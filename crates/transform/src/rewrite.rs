//! Instruction-stream rewriting (paper Sections 2.1–2.3).
//!
//! Each original instruction is mapped to a (possibly longer) replacement
//! sequence:
//!
//! | original | rewritten |
//! |---|---|
//! | `getfield A.f` | `invoke get_f` |
//! | `putfield A.f` | `invoke set_f; pop` |
//! | `getstatic A.f` | `invokestatic A_C_Factory.discover; invoke get_f` |
//! | `putstatic A.f` | `…discover; swap; invoke set_f; pop` |
//! | `new A, <init>$k` | `stash args; invokestatic A_O_Factory.make; dup; unstash; invokestatic A_O_Factory.init$k; pop` |
//! | `invokestatic A.p` | `stash args; …discover; unstash; invoke p` |
//! | `invoke m(σ)` | `invoke m(rewritten σ)` |
//! | `instanceof/checkcast A` | `instanceof/checkcast A_O_Int` |
//!
//! Inside code that *becomes* part of `A`'s own static implementation
//! (former static methods of `A_C_Local` and the factory `clinit`), accesses
//! to `A`'s own static members short-circuit through the receiver instead of
//! `discover()`, exactly as in the paper's Figure 4
//! (`public int p(int i) { return get_z().q(i); }`).
//!
//! Jump targets, exception-handler ranges and local indices (shifted by one
//! when a static method gains a receiver) are all remapped.

use crate::plan::TransformPlan;
use rafda_classmodel::{ClassId, ClassUniverse, Insn, MethodBody, TryHandler};

/// How a body is being re-hosted.
#[derive(Debug, Clone, Copy)]
pub struct BodyCtx {
    /// The original class whose code this is.
    pub self_class: ClassId,
    /// 1 when a former-static body gains a receiver/`that` in local 0.
    pub locals_shift: u16,
    /// Whether accesses to `self_class`'s own static members should use the
    /// receiver in local 0 instead of `discover()` (former statics and
    /// `clinit`).
    pub statics_via_self: bool,
}

impl BodyCtx {
    /// Context for instance methods and constructor bodies (locals keep
    /// their slots; `this` becomes the receiver/`that`).
    pub fn instance(self_class: ClassId) -> Self {
        BodyCtx {
            self_class,
            locals_shift: 0,
            statics_via_self: false,
        }
    }

    /// Context for former static methods (gain a receiver) and `clinit`
    /// (gains the `that` parameter).
    pub fn former_static(self_class: ClassId) -> Self {
        BodyCtx {
            self_class,
            locals_shift: 1,
            statics_via_self: true,
        }
    }
}

/// Rewrite one method body according to the plan.
pub fn rewrite_body(
    universe: &ClassUniverse,
    plan: &TransformPlan,
    ctx: BodyCtx,
    body: &MethodBody,
) -> MethodBody {
    let mut max_locals = body.max_locals + ctx.locals_shift;
    let mut alloc_temp = |n: u16| {
        let base = max_locals;
        max_locals += n;
        base
    };

    // Expand each instruction into a replacement sequence.
    let mut chunks: Vec<Vec<Insn>> = Vec::with_capacity(body.code.len());
    for insn in &body.code {
        let mut out = Vec::with_capacity(1);
        match insn {
            Insn::LoadLocal(n) => out.push(Insn::LoadLocal(n + ctx.locals_shift)),
            Insn::StoreLocal(n) => out.push(Insn::StoreLocal(n + ctx.locals_shift)),

            Insn::GetField(fr) => match plan.family(fr.owner) {
                Some(f) => out.push(Insn::Invoke {
                    sig: f.getters[fr.index as usize],
                    argc: 0,
                }),
                None => out.push(insn.clone()),
            },
            Insn::PutField(fr) => match plan.family(fr.owner) {
                Some(f) => {
                    out.push(Insn::Invoke {
                        sig: f.setters[fr.index as usize],
                        argc: 1,
                    });
                    out.push(Insn::Pop);
                }
                None => out.push(insn.clone()),
            },

            Insn::GetStatic(fr) => match plan.family(fr.owner) {
                Some(f) => {
                    push_static_receiver(&mut out, plan, ctx, fr.owner);
                    out.push(Insn::Invoke {
                        sig: f.static_getters[fr.index as usize],
                        argc: 0,
                    });
                }
                None => out.push(insn.clone()),
            },
            Insn::PutStatic(fr) => match plan.family(fr.owner) {
                Some(f) => {
                    push_static_receiver(&mut out, plan, ctx, fr.owner);
                    out.push(Insn::Swap);
                    out.push(Insn::Invoke {
                        sig: f.static_setters[fr.index as usize],
                        argc: 1,
                    });
                    out.push(Insn::Pop);
                }
                None => out.push(insn.clone()),
            },

            Insn::NewInit { class, ctor, argc } => match plan.family(*class) {
                Some(f) => {
                    // Stash arguments, make(), dup, unstash, init$k, pop.
                    let tmp = alloc_temp(u16::from(*argc));
                    for i in (0..*argc).rev() {
                        out.push(Insn::StoreLocal(tmp + u16::from(i)));
                    }
                    out.push(Insn::InvokeStatic {
                        class: f.obj_factory,
                        sig: f.make_sig,
                        argc: 0,
                    });
                    out.push(Insn::Dup);
                    for i in 0..*argc {
                        out.push(Insn::LoadLocal(tmp + u16::from(i)));
                    }
                    out.push(Insn::InvokeStatic {
                        class: f.obj_factory,
                        sig: f.init_sigs[*ctor as usize],
                        argc: argc + 1,
                    });
                    out.push(Insn::Pop);
                }
                None => out.push(insn.clone()),
            },

            Insn::Invoke { sig, argc } => out.push(Insn::Invoke {
                sig: plan.rewrite_sig(*sig),
                argc: *argc,
            }),

            Insn::InvokeStatic { class, sig, argc } => {
                match universe.resolve_static(*class, *sig) {
                    Some((owner, idx)) if plan.is_substitutable(owner) => {
                        // Static call becomes an instance call on the
                        // singleton implementing the class interface.
                        let inst_sig = plan.method_sigs[&(owner, idx)];
                        if *argc == 0 {
                            push_static_receiver(&mut out, plan, ctx, owner);
                        } else {
                            let tmp = alloc_temp(u16::from(*argc));
                            for i in (0..*argc).rev() {
                                out.push(Insn::StoreLocal(tmp + u16::from(i)));
                            }
                            push_static_receiver(&mut out, plan, ctx, owner);
                            for i in 0..*argc {
                                out.push(Insn::LoadLocal(tmp + u16::from(i)));
                            }
                        }
                        out.push(Insn::Invoke {
                            sig: inst_sig,
                            argc: *argc,
                        });
                    }
                    Some((owner, idx)) if plan.transformable.contains(&owner) => {
                        // Stays static; retarget to the declaring class and
                        // rewrite the signature.
                        out.push(Insn::InvokeStatic {
                            class: owner,
                            sig: plan.method_sigs[&(owner, idx)],
                            argc: *argc,
                        });
                    }
                    _ => out.push(insn.clone()),
                }
            }

            Insn::InstanceOf(c) => out.push(Insn::InstanceOf(
                plan.family(*c).map(|f| f.obj_int).unwrap_or(*c),
            )),
            Insn::CheckCast(c) => out.push(Insn::CheckCast(
                plan.family(*c).map(|f| f.obj_int).unwrap_or(*c),
            )),

            Insn::NewArray(ty) => out.push(Insn::NewArray(plan.rewrite_ty(ty))),

            other => out.push(other.clone()),
        }
        chunks.push(out);
    }

    // Prefix sums map old pcs to new pcs (plus one-past-the-end entry).
    let mut new_pc = Vec::with_capacity(chunks.len() + 1);
    let mut acc = 0u32;
    for chunk in &chunks {
        new_pc.push(acc);
        acc += chunk.len() as u32;
    }
    new_pc.push(acc);

    // Flatten and patch branch targets.
    let mut code = Vec::with_capacity(acc as usize);
    for chunk in chunks {
        for mut insn in chunk {
            match &mut insn {
                Insn::Jump(t) | Insn::JumpIf(t) | Insn::JumpIfNot(t) => {
                    *t = new_pc[*t as usize];
                }
                _ => {}
            }
            code.push(insn);
        }
    }

    let handlers = body
        .handlers
        .iter()
        .map(|h| TryHandler {
            start: new_pc[h.start as usize],
            end: new_pc[h.end as usize],
            target: new_pc[h.target as usize],
            catch: h.catch,
        })
        .collect();

    MethodBody {
        max_locals,
        code,
        handlers,
    }
}

/// Emit the receiver for a static-member access on `owner`: local 0 when we
/// are inside `owner`'s own static implementation, `discover()` otherwise.
fn push_static_receiver(out: &mut Vec<Insn>, plan: &TransformPlan, ctx: BodyCtx, owner: ClassId) {
    if ctx.statics_via_self && owner == ctx.self_class {
        out.push(Insn::LoadLocal(0));
    } else {
        let f = plan.family(owner).expect("substitutable owner");
        out.push(Insn::InvokeStatic {
            class: f.cls_factory.expect("static family exists"),
            sig: f.discover_sig.expect("discover sig"),
            argc: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::plan::build_plan;
    use rafda_classmodel::builder::MethodBuilder;
    use rafda_classmodel::{sample, ClassUniverse};

    fn setup() -> (ClassUniverse, TransformPlan, sample::SampleIds) {
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        let report = analyze(&u);
        let plan = build_plan(&mut u, &report, &[ids.x, ids.y, ids.z], &["RMI".to_owned()]);
        (u, plan, ids)
    }

    fn body_of(u: &ClassUniverse, class: ClassId, name: &str) -> MethodBody {
        let c = u.class(class);
        let idx = c.method_index(name).unwrap();
        c.methods[idx as usize].body.clone().unwrap()
    }

    #[test]
    fn instance_method_field_access_becomes_property_call() {
        let (u, plan, ids) = setup();
        // X.m: load this; getfield X.y; load j; invoke n; return
        let body = body_of(&u, ids.x, "m");
        let out = rewrite_body(&u, &plan, BodyCtx::instance(ids.x), &body);
        let fx = plan.family(ids.x).unwrap();
        assert!(
            out.code
                .iter()
                .any(|i| matches!(i, Insn::Invoke { sig, .. } if *sig == fx.getters[0])),
            "{out:?}"
        );
        assert!(
            !out.code.iter().any(|i| matches!(i, Insn::GetField(_))),
            "direct field access must be gone: {out:?}"
        );
    }

    #[test]
    fn former_static_accesses_own_statics_via_receiver() {
        let (u, plan, ids) = setup();
        // X.p: getstatic X.z; load i; invoke q; return
        let body = body_of(&u, ids.x, "p");
        let out = rewrite_body(&u, &plan, BodyCtx::former_static(ids.x), &body);
        let fx = plan.family(ids.x).unwrap();
        // Expect: load_local 0; invoke get_z; load_local 1 (shifted); invoke q; return
        assert_eq!(out.code[0], Insn::LoadLocal(0));
        assert_eq!(
            out.code[1],
            Insn::Invoke {
                sig: fx.static_getters[0],
                argc: 0
            }
        );
        assert_eq!(out.code[2], Insn::LoadLocal(1));
        assert!(matches!(out.code[3], Insn::Invoke { .. }));
        // No discover() call in the self-path.
        assert!(!out
            .code
            .iter()
            .any(|i| matches!(i, Insn::InvokeStatic { .. })));
        assert_eq!(out.max_locals, body.max_locals + 1);
    }

    #[test]
    fn clinit_translation_matches_figure5() {
        let (u, plan, ids) = setup();
        // X.<clinit>: getstatic Y.K; new Z(…); putstatic X.z; return
        let c = u.class(ids.x);
        let body = c.methods[c.clinit.unwrap() as usize].body.clone().unwrap();
        let out = rewrite_body(&u, &plan, BodyCtx::former_static(ids.x), &body);
        let fy = plan.family(ids.y).unwrap();
        let fz = plan.family(ids.z).unwrap();
        let fx = plan.family(ids.x).unwrap();
        // Y.K read goes through Y_C_Factory.discover().get_K()
        assert!(out.code.iter().any(|i| matches!(i, Insn::InvokeStatic { class, .. } if *class == fy.cls_factory.unwrap())), "{out:?}");
        // new Z goes through Z_O_Factory.make + init$0
        assert!(out.code.iter().any(|i| matches!(i, Insn::InvokeStatic { class, sig, .. } if *class == fz.obj_factory && *sig == fz.make_sig)));
        assert!(out.code.iter().any(|i| matches!(i, Insn::InvokeStatic { class, sig, .. } if *class == fz.obj_factory && *sig == fz.init_sigs[0])));
        // that.set_z(…) via local 0
        assert!(out
            .code
            .iter()
            .any(|i| matches!(i, Insn::Invoke { sig, .. } if *sig == fx.static_setters[0])));
        assert!(!out.code.iter().any(|i| matches!(
            i,
            Insn::PutStatic(_) | Insn::GetStatic(_) | Insn::NewInit { .. }
        )));
    }

    #[test]
    fn static_call_from_outside_goes_through_discover() {
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        // Build a caller: invokestatic X.p(5)
        let p_sig = u.sig("p", vec![rafda_classmodel::Ty::Int]);
        let mut mb = MethodBuilder::new(0);
        mb.const_int(5);
        mb.invoke_static(ids.x, p_sig, 1);
        mb.ret_value();
        let body = mb.finish();
        let report = analyze(&u);
        let plan = build_plan(&mut u, &report, &[ids.x, ids.y, ids.z], &["RMI".to_owned()]);
        let out = rewrite_body(&u, &plan, BodyCtx::instance(ids.x), &body);
        let fx = plan.family(ids.x).unwrap();
        // arg stashed, discover pushed, arg restored, instance invoke.
        assert!(out.code.iter().any(
            |i| matches!(i, Insn::InvokeStatic { class, .. } if *class == fx.cls_factory.unwrap())
        ));
        assert!(out.code.iter().any(|i| matches!(i, Insn::StoreLocal(_))));
        assert!(out.code.iter().any(|i| matches!(i, Insn::Invoke { .. })));
        assert!(out.max_locals > body.max_locals);
    }

    #[test]
    fn jump_targets_and_handlers_are_remapped() {
        let (u, plan, ids) = setup();
        let fz = plan.family(ids.z).unwrap();
        let _ = fz;
        // Build: [0] const true; [1] jump_if 4; [2] getfield X.y (expands); [3] pop; [4] return
        let mut mb = MethodBuilder::new(1);
        let l = mb.label();
        mb.const_bool(true);
        mb.jump_if(l);
        mb.load_this();
        mb.get_field(ids.x, 0);
        mb.pop();
        mb.bind(l);
        mb.ret();
        let mut body = mb.finish();
        body.handlers.push(TryHandler {
            start: 2,
            end: 5,
            target: 5,
            catch: None,
        });
        let out = rewrite_body(&u, &plan, BodyCtx::instance(ids.x), &body);
        // GetField expands 1->1 here (Invoke), so positions unchanged in this
        // case; use a putfield to force expansion instead.
        let mut mb = MethodBuilder::new(2);
        let l = mb.label();
        mb.const_bool(true);
        mb.jump_if(l); // target is last insn
        mb.load_this();
        mb.load_local(1);
        mb.put_field(ids.x, 0); // expands to invoke+pop
        mb.bind(l);
        mb.ret();
        let body2 = mb.finish();
        let out2 = rewrite_body(&u, &plan, BodyCtx::instance(ids.x), &body2);
        // Original target 5 -> now 6 (one extra insn from put_field).
        let Insn::JumpIf(t) = out2.code[1] else {
            panic!("expected jump_if: {:?}", out2.code)
        };
        assert_eq!(t, 6);
        assert_eq!(out2.code.len(), 7);
        drop(out);
    }

    #[test]
    fn rewritten_bodies_still_verify_in_context() {
        // Full engine integration exercises this; here we at least check the
        // rewritten X.m body is balanced by running the verifier on a
        // synthetic host — covered in engine tests.
        let (u, plan, ids) = setup();
        let body = body_of(&u, ids.x, "m");
        let out = rewrite_body(&u, &plan, BodyCtx::instance(ids.x), &body);
        assert!(out.code.len() >= body.code.len());
    }
}
