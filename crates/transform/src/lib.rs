//! # rafda-transform
//!
//! The RAFDA code-transformation engine — the paper's primary contribution
//! (Section 2).
//!
//! Given a class universe, the engine:
//!
//! 1. runs the **transformability analysis** of Section 2.4
//!    ([`analysis`]): classes with native methods, classes with special JVM
//!    semantics, and the closure of those under the reference and
//!    inheritance propagation rules cannot be transformed;
//! 2. for each *substitutable* class `A` (policy decides which transformable
//!    classes are substitutable), generates the artefact family of
//!    Sections 2.1–2.3 ([`generate`]):
//!    `A_O_Int`, `A_O_Local`, `A_O_Proxy_<P>` per protocol,
//!    `A_C_Int`, `A_C_Local`, `A_C_Proxy_<P>` (when `A` has static members),
//!    `A_O_Factory` (`make` + `init_k` per constructor) and
//!    `A_C_Factory` (`discover` + `clinit`);
//! 3. **rewrites every body** that mentions a substitutable class
//!    ([`rewrite`]): field access becomes property access, `new` becomes
//!    `make`+`init`, static access goes through `discover()`, and all type
//!    signatures are rewritten to the extracted interfaces.
//!
//! The generated `make`/`discover` factory methods are `native`: their
//! implementation *is* the distribution policy, installed by the runtime
//! (`rafda-runtime`). This is the paper's point that object creation and
//! class discovery are "the only potentially implementation-aware methods".
//!
//! ## Example
//!
//! ```
//! use rafda_classmodel::{ClassUniverse, sample, verify_universe};
//! use rafda_transform::Transformer;
//!
//! let mut universe = ClassUniverse::new();
//! sample::build_figure2(&mut universe);
//! let outcome = Transformer::new()
//!     .protocols(&["SOAP", "RMI"])
//!     .run(&mut universe)
//!     .unwrap();
//! assert!(universe.by_name("X_O_Int").is_some());
//! assert!(universe.by_name("X_O_Proxy_SOAP").is_some());
//! assert!(universe.by_name("X_C_Factory").is_some());
//! verify_universe(&universe).unwrap(); // rewritten code still verifies
//! assert_eq!(outcome.report.substitutable_count, 3); // X, Y, Z
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod engine;
pub mod generate;
pub mod naming;
pub mod plan;
pub mod rewrite;

pub use analysis::{analyze, NonTransformableReason, TransformabilityReport};
pub use engine::{TransformError, TransformOutcome, TransformReport, Transformer};
pub use plan::{Family, TransformPlan};
