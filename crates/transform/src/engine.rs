//! The transformation engine: analysis → plan → generate → rewrite → verify.

use crate::analysis::{analyze, TransformabilityReport};
use crate::generate::{generate_families, rewrite_in_place};
use crate::plan::{build_plan, TransformPlan};
use rafda_classmodel::{verify_universe, ClassId, ClassKind, ClassOrigin, ClassUniverse};
use std::collections::BTreeSet;
use std::fmt;

/// Why a transformation run was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The universe already contains generated artefacts.
    AlreadyTransformed,
    /// A requested substitutable class does not exist.
    UnknownClass(String),
    /// A requested substitutable class is not transformable.
    NotTransformable(String),
    /// A requested substitutable class is an interface.
    NotAClass(String),
    /// The rewritten universe failed verification (engine bug).
    VerifyFailed(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::AlreadyTransformed => {
                write!(f, "universe already contains generated artefacts")
            }
            TransformError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            TransformError::NotTransformable(n) => {
                write!(f, "class `{n}` is not transformable")
            }
            TransformError::NotAClass(n) => write!(f, "`{n}` is an interface, not a class"),
            TransformError::VerifyFailed(e) => write!(f, "post-transform verification failed: {e}"),
        }
    }
}

impl std::error::Error for TransformError {}

/// Summary statistics of a transformation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransformReport {
    /// Classes analysed.
    pub analyzed: usize,
    /// Non-transformable classes found.
    pub non_transformable: usize,
    /// Classes for which an artefact family was generated.
    pub substitutable_count: usize,
    /// Transformable classes rewritten in place (no family).
    pub rewritten_in_place: usize,
    /// Generated classes (interfaces, locals, proxies, factories).
    pub generated_classes: usize,
    /// Generated methods across all generated classes.
    pub generated_methods: usize,
    /// Property accessors generated (get/set pairs count as 2).
    pub accessors: usize,
    /// Proxy classes generated.
    pub proxy_classes: usize,
}

impl fmt::Display for TransformReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "classes analysed:      {:6}", self.analyzed)?;
        writeln!(f, "non-transformable:     {:6}", self.non_transformable)?;
        writeln!(f, "substitutable:         {:6}", self.substitutable_count)?;
        writeln!(f, "rewritten in place:    {:6}", self.rewritten_in_place)?;
        writeln!(f, "generated classes:     {:6}", self.generated_classes)?;
        writeln!(f, "generated methods:     {:6}", self.generated_methods)?;
        writeln!(f, "property accessors:    {:6}", self.accessors)?;
        writeln!(f, "proxy classes:         {:6}", self.proxy_classes)
    }
}

/// Everything a transformation run produced.
#[derive(Debug, Clone)]
pub struct TransformOutcome {
    /// The plan (families, signature maps) — the runtime needs this to
    /// install factory hooks.
    pub plan: TransformPlan,
    /// The Section 2.4 analysis result.
    pub analysis: TransformabilityReport,
    /// Summary statistics.
    pub report: TransformReport,
}

/// Builder-style configuration of a transformation run.
///
/// "Policy dictates which classes are substitutable and which proxy
/// implementations are used" (Section 1): `substitutable_names` is that
/// policy input (default: every transformable class), `protocols` selects
/// the proxy families to generate.
#[derive(Debug, Clone, Default)]
pub struct Transformer {
    protocols: Vec<String>,
    substitutable: Option<Vec<String>>,
}

impl Transformer {
    /// A transformer with default settings (all transformable classes,
    /// no proxy protocols).
    pub fn new() -> Self {
        Self::default()
    }

    /// Generate proxy families for these protocols (e.g. `"SOAP"`, `"RMI"`,
    /// `"CORBA"`).
    pub fn protocols(mut self, protocols: &[&str]) -> Self {
        self.protocols = protocols.iter().map(|p| (*p).to_owned()).collect();
        self
    }

    /// Restrict substitutability to the named classes (plus any
    /// substitutable ancestors, which are added automatically — a subclass
    /// family cannot exist without its superclass family).
    pub fn substitutable_names(mut self, names: &[&str]) -> Self {
        self.substitutable = Some(names.iter().map(|n| (*n).to_owned()).collect());
        self
    }

    /// Run the transformation, mutating `universe` into the transformed
    /// program.
    ///
    /// # Errors
    /// See [`TransformError`].
    pub fn run(self, universe: &mut ClassUniverse) -> Result<TransformOutcome, TransformError> {
        if universe
            .iter()
            .any(|(_, c)| matches!(c.origin, ClassOrigin::Generated { .. }))
        {
            return Err(TransformError::AlreadyTransformed);
        }
        let analysis = analyze(universe);

        // Resolve the substitutable set.
        let mut subs: BTreeSet<ClassId> = BTreeSet::new();
        match &self.substitutable {
            None => {
                for (id, c) in universe.iter() {
                    if matches!(c.origin, ClassOrigin::Original)
                        && c.kind == ClassKind::Class
                        && !c.is_special
                        && analysis.is_transformable(id)
                    {
                        subs.insert(id);
                    }
                }
            }
            Some(names) => {
                for name in names {
                    let id = universe
                        .by_name(name)
                        .ok_or_else(|| TransformError::UnknownClass(name.clone()))?;
                    if !analysis.is_transformable(id) {
                        return Err(TransformError::NotTransformable(name.clone()));
                    }
                    if universe.class(id).kind != ClassKind::Class {
                        return Err(TransformError::NotAClass(name.clone()));
                    }
                    subs.insert(id);
                }
                // Close under superclasses (all transformable by the
                // subclass rule).
                let seed: Vec<ClassId> = subs.iter().copied().collect();
                for id in seed {
                    for anc in universe.ancestry(id) {
                        subs.insert(anc);
                    }
                }
            }
        }
        let subs: Vec<ClassId> = subs.into_iter().collect();

        let plan = build_plan(universe, &analysis, &subs, &self.protocols);
        generate_families(universe, &plan);

        // Rewrite transformable classes that did not get a family.
        let mut rewritten_in_place = 0;
        let mut rewrite_targets: Vec<ClassId> = plan
            .transformable
            .iter()
            .copied()
            .filter(|id| !plan.is_substitutable(*id))
            .collect();
        rewrite_targets.sort();
        for id in rewrite_targets {
            rewrite_in_place(universe, &plan, id);
            rewritten_in_place += 1;
        }

        verify_universe(universe).map_err(|e| TransformError::VerifyFailed(e.to_string()))?;

        // Report.
        let mut report = TransformReport {
            analyzed: analysis.total,
            non_transformable: analysis.non_transformable_count(),
            substitutable_count: subs.len(),
            rewritten_in_place,
            ..Default::default()
        };
        for (_, c) in universe.iter() {
            if let ClassOrigin::Generated { kind, .. } = &c.origin {
                report.generated_classes += 1;
                report.generated_methods += c.methods.len();
                report.accessors += c
                    .methods
                    .iter()
                    .filter(|m| m.name.starts_with("get_") || m.name.starts_with("set_"))
                    .count();
                if matches!(
                    kind,
                    rafda_classmodel::GenKind::ObjProxy(_)
                        | rafda_classmodel::GenKind::ClassProxy(_)
                ) {
                    report.proxy_classes += 1;
                }
            }
        }

        Ok(TransformOutcome {
            plan,
            analysis,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
    use rafda_classmodel::{sample, Ty};

    #[test]
    fn default_run_transforms_everything_transformable() {
        let mut u = ClassUniverse::new();
        sample::build_figure2(&mut u);
        let outcome = Transformer::new()
            .protocols(&["SOAP", "RMI", "CORBA"])
            .run(&mut u)
            .unwrap();
        assert_eq!(outcome.report.substitutable_count, 3);
        assert_eq!(outcome.report.rewritten_in_place, 0);
        // X: 8 (O-family: int, local, 3 proxies, factory = 6; C-family … )
        assert!(outcome.report.generated_classes >= 3 * 6);
        assert!(outcome.report.proxy_classes >= 9);
        verify_universe(&u).unwrap();
    }

    #[test]
    fn special_and_native_classes_are_skipped() {
        let mut u = ClassUniverse::new();
        sample::build_figure2(&mut u);
        sample::build_throwables(&mut u);
        let outcome = Transformer::new().run(&mut u).unwrap();
        assert_eq!(outcome.report.substitutable_count, 3);
        assert_eq!(outcome.report.non_transformable, 2);
        assert!(u.by_name("Throwable_O_Int").is_none());
    }

    #[test]
    fn named_subset_is_closed_over_ancestors() {
        let mut u = ClassUniverse::new();
        // B extends A; request only B.
        let a = u.declare("A", ClassKind::Class);
        {
            let mut cb = ClassBuilder::new(&u, a);
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(&mut u, vec![], Some(mb.finish()));
            cb.finish(&mut u);
        }
        let b = u.declare("B", ClassKind::Class);
        {
            let mut cb = ClassBuilder::new(&u, b);
            cb.superclass(a);
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(&mut u, vec![], Some(mb.finish()));
            cb.finish(&mut u);
        }
        let outcome = Transformer::new()
            .substitutable_names(&["B"])
            .run(&mut u)
            .unwrap();
        assert_eq!(outcome.report.substitutable_count, 2);
        assert!(u.by_name("A_O_Int").is_some());
        assert!(u.by_name("B_O_Int").is_some());
        // B_O_Int extends A_O_Int; B_O_Local extends A_O_Local.
        let fb = outcome.plan.family(b).unwrap();
        let fa = outcome.plan.family(a).unwrap();
        assert!(u.is_subtype(fb.obj_int, fa.obj_int));
        assert_eq!(u.class(fb.obj_local).superclass, Some(fa.obj_local));
        verify_universe(&u).unwrap();
    }

    #[test]
    fn partial_substitutability_rewrites_referencers_in_place() {
        // Only Z substitutable: X references Z statics… X must be rewritten
        // in place so its `new Z` goes through Z_O_Factory.
        let mut u = ClassUniverse::new();
        sample::build_figure2(&mut u);
        let outcome = Transformer::new()
            .substitutable_names(&["Z"])
            .run(&mut u)
            .unwrap();
        assert_eq!(outcome.report.substitutable_count, 1);
        assert_eq!(outcome.report.rewritten_in_place, 2); // X and Y
        assert!(u.by_name("Z_O_Int").is_some());
        assert!(u.by_name("X_O_Int").is_none());
        // X.<clinit> now calls Z_O_Factory.make.
        let x = u.by_name("X").unwrap();
        let xc = u.class(x);
        let clinit = xc.methods[xc.clinit.unwrap() as usize]
            .body
            .as_ref()
            .unwrap();
        let zf = u.by_name("Z_O_Factory").unwrap();
        assert!(clinit.code.iter().any(
            |i| matches!(i, rafda_classmodel::Insn::InvokeStatic { class, .. } if *class == zf)
        ));
        verify_universe(&u).unwrap();
    }

    #[test]
    fn double_transform_rejected() {
        let mut u = ClassUniverse::new();
        sample::build_figure2(&mut u);
        Transformer::new().run(&mut u).unwrap();
        assert_eq!(
            Transformer::new().run(&mut u).unwrap_err(),
            TransformError::AlreadyTransformed
        );
    }

    #[test]
    fn unknown_and_invalid_substitutable_names_rejected() {
        let mut u = ClassUniverse::new();
        sample::build_figure2(&mut u);
        sample::build_throwables(&mut u);
        let iface = u.declare("IFace", ClassKind::Interface);
        let _ = iface;
        assert_eq!(
            Transformer::new()
                .substitutable_names(&["Nope"])
                .run(&mut u.clone())
                .unwrap_err(),
            TransformError::UnknownClass("Nope".into())
        );
        assert_eq!(
            Transformer::new()
                .substitutable_names(&["Throwable"])
                .run(&mut u.clone())
                .unwrap_err(),
            TransformError::NotTransformable("Throwable".into())
        );
        assert_eq!(
            Transformer::new()
                .substitutable_names(&["IFace"])
                .run(&mut u.clone())
                .unwrap_err(),
            TransformError::NotAClass("IFace".into())
        );
    }

    #[test]
    fn report_display_is_readable() {
        let mut u = ClassUniverse::new();
        sample::build_figure2(&mut u);
        let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
        let s = outcome.report.to_string();
        assert!(s.contains("substitutable"));
        assert!(s.contains("generated classes"));
    }

    #[test]
    fn transform_with_methods_taking_transformed_params() {
        // A method taking and returning substitutable types exercises the
        // signature rewriting path end to end.
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        let mut cb = ClassBuilder::declare(&mut u, "Holder", ClassKind::Class);
        let holder = cb.id();
        let yf = cb.field(rafda_classmodel::Field::new("held", Ty::Object(ids.y)));
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        // Y swap(Y next) { Y old = held; held = next; return old; }
        let mut mb = MethodBuilder::new(2);
        let old = mb.alloc_local();
        mb.load_this().get_field(holder, yf).store_local(old);
        mb.load_this().load_local(1).put_field(holder, yf);
        mb.load_local(old).ret_value();
        cb.method(
            &mut u,
            "swap",
            vec![Ty::Object(ids.y)],
            Ty::Object(ids.y),
            Some(mb.finish()),
        );
        cb.finish(&mut u);

        let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
        verify_universe(&u).unwrap();
        let fh = outcome.plan.family(holder).unwrap();
        let fy = outcome.plan.family(ids.y).unwrap();
        let c = u.class(fh.obj_int);
        let swap = &c.methods[c.method_index("swap").unwrap() as usize];
        assert_eq!(swap.params, vec![Ty::Object(fy.obj_int)]);
        assert_eq!(swap.ret, Ty::Object(fy.obj_int));
    }
}
