//! Transformability analysis (paper Section 2.4).
//!
//! > "It is not practical to inspect or transform code in native methods.
//! > Also, some system classes and interfaces have special semantics in the
//! > JVM […] these special classes and interfaces are not transformed. […]
//! > the super-class of a non-transformable class cannot be transformed.
//! > […] This prevents transformation of classes and interfaces referenced
//! > by a non-transformable class."
//!
//! The analysis seeds the non-transformable set with classes that declare
//! native methods or have special semantics, then propagates to a fixpoint:
//!
//! * **referenced-by rule** — every class referenced by a non-transformable
//!   class (in field types, method signatures, superclass or implemented
//!   interfaces) is non-transformable; since the superclass is a reference,
//!   this subsumes the paper's super-class rule;
//! * **subclass rule** — a class whose superclass is non-transformable is
//!   itself non-transformable. (The paper does not state this rule; it is
//!   required for soundness of the proxy hierarchy, because the remote proxy
//!   of a subclass cannot carry the untransformed superclass state. Our
//!   model has no universal `Object` root, so this rule does not poison the
//!   whole universe the way it would in real Java.)
//!
//! The paper reports that about **40 % of the 8,200 classes and interfaces
//! of JDK 1.4.1** are non-transformable under these rules; experiment E3
//! reproduces that statistic on a synthetic corpus with JDK-like shape.

use rafda_classmodel::{ClassId, ClassOrigin, ClassUniverse};
use std::collections::HashMap;
use std::fmt;

/// Why a class cannot be transformed (the *first* reason discovered wins,
/// seed reasons over propagated ones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NonTransformableReason {
    /// Declares at least one `native` method.
    NativeMethod,
    /// Has special JVM semantics (`Throwable` hierarchy, `Object`,
    /// `String`, `Class`, …).
    SpecialSemantics,
    /// Referenced (field/signature/superclass/interface) by the
    /// non-transformable class given.
    ReferencedByNonTransformable(ClassId),
    /// Its superclass is non-transformable.
    SubclassOfNonTransformable(ClassId),
}

impl NonTransformableReason {
    /// A short label for reporting tables.
    pub fn label(&self) -> &'static str {
        match self {
            NonTransformableReason::NativeMethod => "native method",
            NonTransformableReason::SpecialSemantics => "special semantics",
            NonTransformableReason::ReferencedByNonTransformable(_) => "referenced by NT",
            NonTransformableReason::SubclassOfNonTransformable(_) => "subclass of NT",
        }
    }
}

/// The result of the transformability analysis.
#[derive(Debug, Clone, Default)]
pub struct TransformabilityReport {
    /// Classes analysed (original classes and interfaces only).
    pub total: usize,
    /// Non-transformable classes with the reason.
    pub non_transformable: HashMap<ClassId, NonTransformableReason>,
}

impl TransformabilityReport {
    /// Whether `class` can be transformed.
    pub fn is_transformable(&self, class: ClassId) -> bool {
        !self.non_transformable.contains_key(&class)
    }

    /// Number of non-transformable classes.
    pub fn non_transformable_count(&self) -> usize {
        self.non_transformable.len()
    }

    /// Fraction of classes that are non-transformable, in `[0, 1]`.
    pub fn non_transformable_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.non_transformable.len() as f64 / self.total as f64
        }
    }

    /// Per-reason counts: `(native, special, referenced, subclass)`.
    pub fn reason_breakdown(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for reason in self.non_transformable.values() {
            match reason {
                NonTransformableReason::NativeMethod => counts.0 += 1,
                NonTransformableReason::SpecialSemantics => counts.1 += 1,
                NonTransformableReason::ReferencedByNonTransformable(_) => counts.2 += 1,
                NonTransformableReason::SubclassOfNonTransformable(_) => counts.3 += 1,
            }
        }
        counts
    }
}

impl fmt::Display for TransformabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (native, special, referenced, subclass) = self.reason_breakdown();
        writeln!(f, "classes analysed:        {:6}", self.total)?;
        writeln!(
            f,
            "non-transformable:       {:6} ({:.1}%)",
            self.non_transformable_count(),
            100.0 * self.non_transformable_fraction()
        )?;
        writeln!(f, "  native method:         {native:6}")?;
        writeln!(f, "  special semantics:     {special:6}")?;
        writeln!(f, "  referenced by NT:      {referenced:6}")?;
        writeln!(f, "  subclass of NT:        {subclass:6}")
    }
}

/// Run the transformability analysis over all *original* classes of the
/// universe (generated artefacts are skipped — they are never candidates).
pub fn analyze(universe: &ClassUniverse) -> TransformabilityReport {
    let originals: Vec<ClassId> = universe
        .iter()
        .filter(|(_, c)| matches!(c.origin, ClassOrigin::Original))
        .map(|(id, _)| id)
        .collect();
    let mut report = TransformabilityReport {
        total: originals.len(),
        non_transformable: HashMap::new(),
    };

    // Seed.
    let mut work: Vec<ClassId> = Vec::new();
    for &id in &originals {
        let c = universe.class(id);
        let reason = if c.is_special {
            Some(NonTransformableReason::SpecialSemantics)
        } else if c.has_native_method() {
            Some(NonTransformableReason::NativeMethod)
        } else {
            None
        };
        if let Some(reason) = reason {
            report.non_transformable.insert(id, reason);
            work.push(id);
        }
    }

    // Subclass index for the subclass rule.
    let mut subclasses: HashMap<ClassId, Vec<ClassId>> = HashMap::new();
    for &id in &originals {
        if let Some(sup) = universe.class(id).superclass {
            subclasses.entry(sup).or_default().push(id);
        }
    }

    // Fixpoint.
    while let Some(nt) = work.pop() {
        // Referenced-by rule (includes superclass and interfaces).
        for referenced in universe.referenced_classes(nt) {
            if matches!(universe.class(referenced).origin, ClassOrigin::Original)
                && !report.non_transformable.contains_key(&referenced)
            {
                report.non_transformable.insert(
                    referenced,
                    NonTransformableReason::ReferencedByNonTransformable(nt),
                );
                work.push(referenced);
            }
        }
        // Subclass rule.
        if let Some(subs) = subclasses.get(&nt) {
            for &sub in subs {
                if let std::collections::hash_map::Entry::Vacant(e) =
                    report.non_transformable.entry(sub)
                {
                    e.insert(NonTransformableReason::SubclassOfNonTransformable(nt));
                    work.push(sub);
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
    use rafda_classmodel::{sample, ClassKind, Field, Ty};

    #[test]
    fn clean_program_is_fully_transformable() {
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        let report = analyze(&u);
        assert_eq!(report.total, 3);
        assert_eq!(report.non_transformable_count(), 0);
        assert!(report.is_transformable(ids.x));
        assert_eq!(report.non_transformable_fraction(), 0.0);
    }

    #[test]
    fn native_method_poisons_class() {
        let mut u = ClassUniverse::new();
        let mut cb = ClassBuilder::declare(&mut u, "Nat", ClassKind::Class);
        cb.native_method(&mut u, "n", vec![], Ty::Void);
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        let id = cb.finish(&mut u);
        let report = analyze(&u);
        assert_eq!(
            report.non_transformable.get(&id),
            Some(&NonTransformableReason::NativeMethod)
        );
    }

    #[test]
    fn special_classes_are_non_transformable() {
        let mut u = ClassUniverse::new();
        let (t, e) = sample::build_throwables(&mut u);
        let report = analyze(&u);
        assert!(!report.is_transformable(t));
        assert!(!report.is_transformable(e));
        assert_eq!(
            report.non_transformable.get(&e),
            Some(&NonTransformableReason::SpecialSemantics)
        );
    }

    #[test]
    fn referenced_by_nt_propagates_transitively() {
        // Nat (native) has a field of type A; A has a field of type B.
        // A is poisoned directly, B transitively (via A's own poisoning? no:
        // B is only poisoned if referenced by an NT class — A becomes NT, so
        // B becomes NT too).
        let mut u = ClassUniverse::new();
        let a = u.declare("A", ClassKind::Class);
        let b = u.declare("B", ClassKind::Class);
        {
            let mut cb = ClassBuilder::new(&u, a);
            cb.field(Field::new("b", Ty::Object(b)));
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(&mut u, vec![], Some(mb.finish()));
            cb.finish(&mut u);
        }
        {
            let mut cb = ClassBuilder::new(&u, b);
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(&mut u, vec![], Some(mb.finish()));
            cb.finish(&mut u);
        }
        let mut cb = ClassBuilder::declare(&mut u, "Nat", ClassKind::Class);
        cb.field(Field::new("a", Ty::Object(a)));
        cb.native_method(&mut u, "n", vec![], Ty::Void);
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        let nat = cb.finish(&mut u);

        let report = analyze(&u);
        assert_eq!(report.non_transformable_count(), 3);
        assert_eq!(
            report.non_transformable.get(&a),
            Some(&NonTransformableReason::ReferencedByNonTransformable(nat))
        );
        assert_eq!(
            report.non_transformable.get(&b),
            Some(&NonTransformableReason::ReferencedByNonTransformable(a))
        );
    }

    #[test]
    fn superclass_of_nt_is_nt_via_reference_rule() {
        // Sup <- Nat(native): Sup is referenced by Nat (superclass edge).
        let mut u = ClassUniverse::new();
        let sup = u.declare("Sup", ClassKind::Class);
        {
            let mut cb = ClassBuilder::new(&u, sup);
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(&mut u, vec![], Some(mb.finish()));
            cb.finish(&mut u);
        }
        let mut cb = ClassBuilder::declare(&mut u, "Nat", ClassKind::Class);
        cb.superclass(sup);
        cb.native_method(&mut u, "n", vec![], Ty::Void);
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        cb.finish(&mut u);

        let report = analyze(&u);
        assert!(!report.is_transformable(sup));
        assert!(matches!(
            report.non_transformable.get(&sup),
            Some(NonTransformableReason::ReferencedByNonTransformable(_))
        ));
    }

    #[test]
    fn subclass_of_nt_is_nt() {
        let mut u = ClassUniverse::new();
        let mut cb = ClassBuilder::declare(&mut u, "Nat", ClassKind::Class);
        cb.native_method(&mut u, "n", vec![], Ty::Void);
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        let nat = cb.finish(&mut u);

        let mut cb = ClassBuilder::declare(&mut u, "Child", ClassKind::Class);
        cb.superclass(nat);
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        let child = cb.finish(&mut u);

        let report = analyze(&u);
        assert_eq!(
            report.non_transformable.get(&child),
            Some(&NonTransformableReason::SubclassOfNonTransformable(nat))
        );
    }

    #[test]
    fn breakdown_and_display() {
        let mut u = ClassUniverse::new();
        sample::build_throwables(&mut u);
        let report = analyze(&u);
        let (native, special, referenced, subclass) = report.reason_breakdown();
        assert_eq!(native + special + referenced + subclass, 2);
        let s = report.to_string();
        assert!(s.contains("non-transformable"));
        assert!(s.contains("special semantics"));
    }
}
