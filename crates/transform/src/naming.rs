//! Naming conventions for generated artefacts, exactly as in the paper:
//! for a class `A` the family is `A_O_Int`, `A_O_Local`, `A_O_Proxy_<P>`,
//! `A_C_Int`, `A_C_Local`, `A_C_Proxy_<P>`, `A_O_Factory`, `A_C_Factory`;
//! each attribute `f` becomes a property with accessors `get_f`/`set_f`.

/// `A_O_Int` — instance-members interface.
pub fn obj_interface(class: &str) -> String {
    format!("{class}_O_Int")
}

/// `A_O_Local` — non-remote instance implementation.
pub fn obj_local(class: &str) -> String {
    format!("{class}_O_Local")
}

/// `A_O_Proxy_<P>` — remote instance proxy for protocol `P`.
pub fn obj_proxy(class: &str, protocol: &str) -> String {
    format!("{class}_O_Proxy_{protocol}")
}

/// `A_C_Int` — static-members interface.
pub fn class_interface(class: &str) -> String {
    format!("{class}_C_Int")
}

/// `A_C_Local` — non-remote singleton implementation of the static members.
pub fn class_local(class: &str) -> String {
    format!("{class}_C_Local")
}

/// `A_C_Proxy_<P>` — remote static proxy for protocol `P`.
pub fn class_proxy(class: &str, protocol: &str) -> String {
    format!("{class}_C_Proxy_{protocol}")
}

/// `A_O_Factory` — object factory (`make` + `init_k`).
pub fn obj_factory(class: &str) -> String {
    format!("{class}_O_Factory")
}

/// `A_C_Factory` — class factory (`discover` + `clinit`).
pub fn class_factory(class: &str) -> String {
    format!("{class}_C_Factory")
}

/// Property getter name for attribute `f`.
pub fn getter(field: &str) -> String {
    format!("get_{field}")
}

/// Property setter name for attribute `f`.
pub fn setter(field: &str) -> String {
    format!("set_{field}")
}

/// Factory initialisation method for constructor ordinal `k` (`init` in the
/// paper, disambiguated per constructor).
pub fn init_method(ctor: usize) -> String {
    format!("init${ctor}")
}

/// The object-creation method (paper: `make`).
pub const MAKE: &str = "make";

/// The class-discovery method (paper: `discover`).
pub const DISCOVER: &str = "discover";

/// The translated static-initialiser method on the class factory
/// (paper: `clinit`).
pub const CLINIT: &str = "clinit";

/// The original class name of a generated artefact, if the name matches a
/// generated pattern.
pub fn base_of(generated: &str) -> Option<&str> {
    for marker in [
        "_O_Int",
        "_O_Local",
        "_C_Int",
        "_C_Local",
        "_O_Factory",
        "_C_Factory",
    ] {
        if let Some(base) = generated.strip_suffix(marker) {
            return Some(base);
        }
    }
    for marker in ["_O_Proxy_", "_C_Proxy_"] {
        if let Some(pos) = generated.find(marker) {
            return Some(&generated[..pos]);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        assert_eq!(obj_interface("X"), "X_O_Int");
        assert_eq!(obj_local("X"), "X_O_Local");
        assert_eq!(obj_proxy("X", "SOAP"), "X_O_Proxy_SOAP");
        assert_eq!(class_interface("X"), "X_C_Int");
        assert_eq!(class_local("X"), "X_C_Local");
        assert_eq!(class_proxy("X", "RMI"), "X_C_Proxy_RMI");
        assert_eq!(obj_factory("X"), "X_O_Factory");
        assert_eq!(class_factory("X"), "X_C_Factory");
        assert_eq!(getter("y"), "get_y");
        assert_eq!(setter("y"), "set_y");
    }

    #[test]
    fn base_of_inverts_generation() {
        for name in [
            "X_O_Int",
            "X_O_Local",
            "X_O_Proxy_SOAP",
            "X_C_Int",
            "X_C_Local",
            "X_C_Proxy_RMI",
            "X_O_Factory",
            "X_C_Factory",
        ] {
            assert_eq!(base_of(name), Some("X"), "{name}");
        }
        assert_eq!(base_of("X"), None);
        assert_eq!(base_of("Observer"), None);
    }
}
