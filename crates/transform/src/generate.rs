//! Generation of the artefact family (paper Figures 3, 4, 5).

use crate::plan::{Family, TransformPlan};
use crate::rewrite::{rewrite_body, BodyCtx};
use rafda_classmodel::{
    Class, ClassId, ClassKind, ClassOrigin, ClassUniverse, Field, GenKind, Insn, Method,
    MethodBody, SigId, Ty, Visibility,
};

fn method(
    name: impl Into<String>,
    sig: SigId,
    params: Vec<Ty>,
    ret: Ty,
    is_static: bool,
    is_native: bool,
    body: Option<MethodBody>,
) -> Method {
    Method {
        name: name.into(),
        sig,
        params,
        ret,
        visibility: Visibility::Public,
        is_static,
        is_native,
        body,
    }
}

fn simple_body(code: Vec<Insn>, max_locals: u16) -> MethodBody {
    MethodBody {
        max_locals,
        code,
        handlers: Vec::new(),
    }
}

/// Generate every family in the plan, defining the classes declared by the
/// planning pass.
pub fn generate_families(universe: &mut ClassUniverse, plan: &TransformPlan) {
    // Deterministic order.
    let mut bases: Vec<ClassId> = plan.families.keys().copied().collect();
    bases.sort();
    for base in bases {
        let family = plan.families[&base].clone();
        gen_obj_interface(universe, plan, &family);
        gen_obj_local(universe, plan, &family);
        gen_obj_proxies(universe, plan, &family);
        gen_obj_factory(universe, plan, &family);
        if family.has_statics {
            gen_cls_interface(universe, plan, &family);
            gen_cls_local(universe, plan, &family);
            gen_cls_proxies(universe, plan, &family);
            gen_cls_factory(universe, plan, &family);
        }
    }
}

/// Instance members that belong to the extracted interface: every non-ctor,
/// non-static method of the original class.
fn interface_methods(universe: &ClassUniverse, base: ClassId) -> Vec<u16> {
    universe
        .class(base)
        .methods
        .iter()
        .enumerate()
        .filter(|(_, m)| !m.is_static && !m.is_ctor())
        .map(|(i, _)| i as u16)
        .collect()
}

/// Static members exposed on the class interface: every static, non-clinit
/// method.
fn static_methods(universe: &ClassUniverse, base: ClassId) -> Vec<u16> {
    universe
        .class(base)
        .methods
        .iter()
        .enumerate()
        .filter(|(_, m)| m.is_static && !m.is_clinit())
        .map(|(i, _)| i as u16)
        .collect()
}

/// `A_O_Int` (Figure 3): property accessors for every attribute plus every
/// instance method, all with interface-rewritten signatures.
fn gen_obj_interface(universe: &mut ClassUniverse, plan: &TransformPlan, family: &Family) {
    let base = universe.class(family.base).clone();
    let mut methods = Vec::new();
    for (i, f) in base.fields.iter().enumerate() {
        let rty = plan.rewrite_ty(&f.ty);
        methods.push(method(
            crate::naming::getter(&f.name),
            family.getters[i],
            vec![],
            rty.clone(),
            false,
            false,
            None,
        ));
        methods.push(method(
            crate::naming::setter(&f.name),
            family.setters[i],
            vec![rty],
            Ty::Void,
            false,
            false,
            None,
        ));
    }
    for &mi in &interface_methods(universe, family.base) {
        let m = &base.methods[mi as usize];
        let sig = plan.method_sigs[&(family.base, mi)];
        methods.push(method(
            m.name.clone(),
            sig,
            m.params.iter().map(|t| plan.rewrite_ty(t)).collect(),
            plan.rewrite_ty(&m.ret),
            false,
            false,
            None,
        ));
    }
    // Interface inheritance mirrors the class hierarchy.
    let supers = base
        .superclass
        .and_then(|s| plan.family(s))
        .map(|f| vec![f.obj_int])
        .unwrap_or_default();
    universe.define(
        family.obj_int,
        Class {
            name: universe.class(family.obj_int).name.clone(),
            kind: ClassKind::Interface,
            superclass: None,
            interfaces: supers,
            fields: vec![],
            static_fields: vec![],
            methods,
            ctors: vec![],
            clinit: None,
            is_special: false,
            is_abstract: true,
            origin: ClassOrigin::Generated {
                from: family.base,
                kind: GenKind::ObjInterface,
            },
        },
    );
}

/// `A_O_Local` (Figure 3): fields become private properties with accessors;
/// original methods are installed with rewritten bodies; a default
/// parameter-less constructor replaces the originals (whose logic moved to
/// the factory).
fn gen_obj_local(universe: &mut ClassUniverse, plan: &TransformPlan, family: &Family) {
    let base = universe.class(family.base).clone();
    let me = family.obj_local;
    let mut fields = Vec::new();
    for f in &base.fields {
        fields.push(Field {
            name: f.name.clone(),
            ty: plan.rewrite_ty(&f.ty),
            visibility: Visibility::Private,
            is_final: false,
        });
    }
    let mut methods = Vec::new();
    // Default parameter-less constructor.
    let ctor_name = "<init>$0";
    let ctor_sig = universe.sig(ctor_name, vec![]);
    methods.push(method(
        ctor_name,
        ctor_sig,
        vec![],
        Ty::Void,
        false,
        false,
        Some(simple_body(vec![Insn::Return], 1)),
    ));
    // Accessors (the only remaining direct field access).
    for (i, f) in base.fields.iter().enumerate() {
        let rty = plan.rewrite_ty(&f.ty);
        methods.push(method(
            crate::naming::getter(&f.name),
            family.getters[i],
            vec![],
            rty.clone(),
            false,
            false,
            Some(simple_body(
                vec![
                    Insn::LoadLocal(0),
                    Insn::GetField(rafda_classmodel::FieldRef {
                        owner: me,
                        index: i as u16,
                    }),
                    Insn::ReturnValue,
                ],
                1,
            )),
        ));
        methods.push(method(
            crate::naming::setter(&f.name),
            family.setters[i],
            vec![rty],
            Ty::Void,
            false,
            false,
            Some(simple_body(
                vec![
                    Insn::LoadLocal(0),
                    Insn::LoadLocal(1),
                    Insn::PutField(rafda_classmodel::FieldRef {
                        owner: me,
                        index: i as u16,
                    }),
                    Insn::Return,
                ],
                2,
            )),
        ));
    }
    // Original instance methods with rewritten bodies.
    for &mi in &interface_methods(universe, family.base) {
        let m = &base.methods[mi as usize];
        let body = m
            .body
            .as_ref()
            .map(|b| rewrite_body(universe, plan, BodyCtx::instance(family.base), b));
        methods.push(method(
            m.name.clone(),
            plan.method_sigs[&(family.base, mi)],
            m.params.iter().map(|t| plan.rewrite_ty(t)).collect(),
            plan.rewrite_ty(&m.ret),
            false,
            false,
            body,
        ));
    }
    let superclass = base.superclass.map(|s| {
        plan.family(s)
            .expect("superclass is substitutable")
            .obj_local
    });
    let mut interfaces = vec![family.obj_int];
    interfaces.extend(base.interfaces.iter().copied());
    let ctors = vec![0];
    universe.define(
        me,
        Class {
            name: universe.class(me).name.clone(),
            kind: ClassKind::Class,
            superclass,
            interfaces,
            fields,
            static_fields: vec![],
            methods,
            ctors,
            clinit: None,
            is_special: false,
            is_abstract: base.is_abstract,
            origin: ClassOrigin::Generated {
                from: family.base,
                kind: GenKind::ObjLocal,
            },
        },
    );
}

/// Proxy state: every root proxy class declares `__node` (Int) and `__oid`
/// (Long) at field offsets 0 and 1; subclass proxies inherit them.
pub const PROXY_NODE_FIELD: usize = 0;
/// See [`PROXY_NODE_FIELD`].
pub const PROXY_OID_FIELD: usize = 1;

fn proxy_state_fields() -> Vec<Field> {
    vec![
        Field {
            name: "__node".to_owned(),
            ty: Ty::Int,
            visibility: Visibility::Private,
            is_final: false,
        },
        Field {
            name: "__oid".to_owned(),
            ty: Ty::Long,
            visibility: Visibility::Private,
            is_final: false,
        },
    ]
}

/// `A_O_Proxy_<P>` (Figure 3): implements the interface with `native`
/// methods whose hooks (installed by the runtime) marshal the call over
/// protocol `P`.
fn gen_obj_proxies(universe: &mut ClassUniverse, plan: &TransformPlan, family: &Family) {
    let base = universe.class(family.base).clone();
    for (pi, (proto, me)) in family.obj_proxies.iter().enumerate() {
        let me = *me;
        // Chain proxies along the class hierarchy so inherited members
        // resolve to the superclass proxy's hooks.
        let super_proxy = base
            .superclass
            .map(|s| plan.family(s).expect("substitutable super").obj_proxies[pi].1);
        let fields = if super_proxy.is_some() {
            vec![]
        } else {
            proxy_state_fields()
        };
        let mut methods = Vec::new();
        let ctor_sig = universe.sig("<init>$0", vec![]);
        methods.push(method(
            "<init>$0",
            ctor_sig,
            vec![],
            Ty::Void,
            false,
            false,
            Some(simple_body(vec![Insn::Return], 1)),
        ));
        for (i, f) in base.fields.iter().enumerate() {
            let rty = plan.rewrite_ty(&f.ty);
            methods.push(method(
                crate::naming::getter(&f.name),
                family.getters[i],
                vec![],
                rty.clone(),
                false,
                true,
                None,
            ));
            methods.push(method(
                crate::naming::setter(&f.name),
                family.setters[i],
                vec![rty],
                Ty::Void,
                false,
                true,
                None,
            ));
        }
        for &mi in &interface_methods(universe, family.base) {
            let m = &base.methods[mi as usize];
            methods.push(method(
                m.name.clone(),
                plan.method_sigs[&(family.base, mi)],
                m.params.iter().map(|t| plan.rewrite_ty(t)).collect(),
                plan.rewrite_ty(&m.ret),
                false,
                true,
                None,
            ));
        }
        universe.define(
            me,
            Class {
                name: universe.class(me).name.clone(),
                kind: ClassKind::Class,
                superclass: super_proxy,
                interfaces: vec![family.obj_int],
                fields,
                static_fields: vec![],
                methods,
                ctors: vec![0],
                clinit: None,
                is_special: false,
                is_abstract: false,
                origin: ClassOrigin::Generated {
                    from: family.base,
                    kind: GenKind::ObjProxy(proto.clone()),
                },
            },
        );
    }
}

/// `A_O_Factory` (Figure 5): `native make()` (the policy decision point)
/// plus one generated `init$k(that, …)` per original constructor.
fn gen_obj_factory(universe: &mut ClassUniverse, plan: &TransformPlan, family: &Family) {
    let base = universe.class(family.base).clone();
    let mut methods = Vec::new();
    methods.push(method(
        crate::naming::MAKE,
        family.make_sig,
        vec![],
        Ty::Object(family.obj_int),
        true,
        true,
        None,
    ));
    for (k, &ci) in base.ctors.iter().enumerate() {
        let ctor = &base.methods[ci as usize];
        let body = ctor
            .body
            .as_ref()
            .map(|b| rewrite_body(universe, plan, BodyCtx::instance(family.base), b));
        let mut params = vec![Ty::Object(family.obj_int)];
        params.extend(ctor.params.iter().map(|t| plan.rewrite_ty(t)));
        methods.push(method(
            crate::naming::init_method(k),
            family.init_sigs[k],
            params,
            Ty::Void,
            true,
            false,
            body,
        ));
    }
    universe.define(
        family.obj_factory,
        Class {
            name: universe.class(family.obj_factory).name.clone(),
            kind: ClassKind::Class,
            superclass: None,
            interfaces: vec![],
            fields: vec![],
            static_fields: vec![],
            methods,
            ctors: vec![],
            clinit: None,
            is_special: false,
            is_abstract: false,
            origin: ClassOrigin::Generated {
                from: family.base,
                kind: GenKind::ObjFactory,
            },
        },
    );
}

/// `A_C_Int` (Figure 4): accessors for the (de-staticised) static fields and
/// the former static methods as instance members.
fn gen_cls_interface(universe: &mut ClassUniverse, plan: &TransformPlan, family: &Family) {
    let base = universe.class(family.base).clone();
    let mut methods = Vec::new();
    for (i, f) in base.static_fields.iter().enumerate() {
        let rty = plan.rewrite_ty(&f.ty);
        methods.push(method(
            crate::naming::getter(&f.name),
            family.static_getters[i],
            vec![],
            rty.clone(),
            false,
            false,
            None,
        ));
        methods.push(method(
            crate::naming::setter(&f.name),
            family.static_setters[i],
            vec![rty],
            Ty::Void,
            false,
            false,
            None,
        ));
    }
    for &mi in &static_methods(universe, family.base) {
        let m = &base.methods[mi as usize];
        methods.push(method(
            m.name.clone(),
            plan.method_sigs[&(family.base, mi)],
            m.params.iter().map(|t| plan.rewrite_ty(t)).collect(),
            plan.rewrite_ty(&m.ret),
            false,
            false,
            None,
        ));
    }
    let me = family.cls_int.expect("statics planned");
    universe.define(
        me,
        Class {
            name: universe.class(me).name.clone(),
            kind: ClassKind::Interface,
            superclass: None,
            interfaces: vec![],
            fields: vec![],
            static_fields: vec![],
            methods,
            ctors: vec![],
            clinit: None,
            is_special: false,
            is_abstract: true,
            origin: ClassOrigin::Generated {
                from: family.base,
                kind: GenKind::ClassInterface,
            },
        },
    );
}

/// `A_C_Local` (Figure 4): the singleton implementation — former static
/// fields become instance properties, former static methods become instance
/// methods whose bodies short-circuit own-static access through `this`.
fn gen_cls_local(universe: &mut ClassUniverse, plan: &TransformPlan, family: &Family) {
    let base = universe.class(family.base).clone();
    let me = family.cls_local.expect("statics planned");
    let mut fields = Vec::new();
    for f in &base.static_fields {
        fields.push(Field {
            name: f.name.clone(),
            ty: plan.rewrite_ty(&f.ty),
            visibility: Visibility::Private,
            is_final: false,
        });
    }
    let mut methods = Vec::new();
    let ctor_sig = universe.sig("<init>$0", vec![]);
    methods.push(method(
        "<init>$0",
        ctor_sig,
        vec![],
        Ty::Void,
        false,
        false,
        Some(simple_body(vec![Insn::Return], 1)),
    ));
    for (i, f) in base.static_fields.iter().enumerate() {
        let rty = plan.rewrite_ty(&f.ty);
        methods.push(method(
            crate::naming::getter(&f.name),
            family.static_getters[i],
            vec![],
            rty.clone(),
            false,
            false,
            Some(simple_body(
                vec![
                    Insn::LoadLocal(0),
                    Insn::GetField(rafda_classmodel::FieldRef {
                        owner: me,
                        index: i as u16,
                    }),
                    Insn::ReturnValue,
                ],
                1,
            )),
        ));
        methods.push(method(
            crate::naming::setter(&f.name),
            family.static_setters[i],
            vec![rty],
            Ty::Void,
            false,
            false,
            Some(simple_body(
                vec![
                    Insn::LoadLocal(0),
                    Insn::LoadLocal(1),
                    Insn::PutField(rafda_classmodel::FieldRef {
                        owner: me,
                        index: i as u16,
                    }),
                    Insn::Return,
                ],
                2,
            )),
        ));
    }
    for &mi in &static_methods(universe, family.base) {
        let m = &base.methods[mi as usize];
        let body = m
            .body
            .as_ref()
            .map(|b| rewrite_body(universe, plan, BodyCtx::former_static(family.base), b));
        methods.push(method(
            m.name.clone(),
            plan.method_sigs[&(family.base, mi)],
            m.params.iter().map(|t| plan.rewrite_ty(t)).collect(),
            plan.rewrite_ty(&m.ret),
            false,
            false,
            body,
        ));
    }
    universe.define(
        me,
        Class {
            name: universe.class(me).name.clone(),
            kind: ClassKind::Class,
            superclass: None,
            interfaces: vec![family.cls_int.expect("statics planned")],
            fields,
            static_fields: vec![],
            methods,
            ctors: vec![0],
            clinit: None,
            is_special: false,
            is_abstract: false,
            origin: ClassOrigin::Generated {
                from: family.base,
                kind: GenKind::ClassLocal,
            },
        },
    );
}

/// `A_C_Proxy_<P>` (Figure 4): remote singleton proxy, all members native.
fn gen_cls_proxies(universe: &mut ClassUniverse, plan: &TransformPlan, family: &Family) {
    let base = universe.class(family.base).clone();
    for (proto, me) in &family.cls_proxies {
        let me = *me;
        let mut methods = Vec::new();
        let ctor_sig = universe.sig("<init>$0", vec![]);
        methods.push(method(
            "<init>$0",
            ctor_sig,
            vec![],
            Ty::Void,
            false,
            false,
            Some(simple_body(vec![Insn::Return], 1)),
        ));
        for (i, f) in base.static_fields.iter().enumerate() {
            let rty = plan.rewrite_ty(&f.ty);
            methods.push(method(
                crate::naming::getter(&f.name),
                family.static_getters[i],
                vec![],
                rty.clone(),
                false,
                true,
                None,
            ));
            methods.push(method(
                crate::naming::setter(&f.name),
                family.static_setters[i],
                vec![rty],
                Ty::Void,
                false,
                true,
                None,
            ));
        }
        for &mi in &static_methods(universe, family.base) {
            let m = &base.methods[mi as usize];
            methods.push(method(
                m.name.clone(),
                plan.method_sigs[&(family.base, mi)],
                m.params.iter().map(|t| plan.rewrite_ty(t)).collect(),
                plan.rewrite_ty(&m.ret),
                false,
                true,
                None,
            ));
        }
        universe.define(
            me,
            Class {
                name: universe.class(me).name.clone(),
                kind: ClassKind::Class,
                superclass: None,
                interfaces: vec![family.cls_int.expect("statics planned")],
                fields: proxy_state_fields(),
                static_fields: vec![],
                methods,
                ctors: vec![0],
                clinit: None,
                is_special: false,
                is_abstract: false,
                origin: ClassOrigin::Generated {
                    from: family.base,
                    kind: GenKind::ClassProxy(proto.clone()),
                },
            },
        );
    }
}

/// `A_C_Factory` (Figure 5): `native discover()` plus the translated
/// `clinit(that)` mirroring the original static initialiser.
fn gen_cls_factory(universe: &mut ClassUniverse, plan: &TransformPlan, family: &Family) {
    let base = universe.class(family.base).clone();
    let cls_int = family.cls_int.expect("statics planned");
    let mut methods = Vec::new();
    methods.push(method(
        crate::naming::DISCOVER,
        family.discover_sig.expect("planned"),
        vec![],
        Ty::Object(cls_int),
        true,
        true,
        None,
    ));
    if let Some(ci) = base.clinit {
        let body = base.methods[ci as usize]
            .body
            .as_ref()
            .map(|b| rewrite_body(universe, plan, BodyCtx::former_static(family.base), b));
        methods.push(method(
            crate::naming::CLINIT,
            family.clinit_sig.expect("planned"),
            vec![Ty::Object(cls_int)],
            Ty::Void,
            true,
            false,
            body,
        ));
    }
    let me = family.cls_factory.expect("statics planned");
    universe.define(
        me,
        Class {
            name: universe.class(me).name.clone(),
            kind: ClassKind::Class,
            superclass: None,
            interfaces: vec![],
            fields: vec![],
            static_fields: vec![],
            methods,
            ctors: vec![],
            clinit: None,
            is_special: false,
            is_abstract: false,
            origin: ClassOrigin::Generated {
                from: family.base,
                kind: GenKind::ClassFactory,
            },
        },
    );
}

/// Rewrite a transformable but non-substitutable class **in place**: its
/// types and call sites must use the extracted interfaces of the
/// substitutable classes it references ("Every reference to a substitutable
/// class must then be transformed to use the extracted interface",
/// Section 1).
pub fn rewrite_in_place(universe: &mut ClassUniverse, plan: &TransformPlan, class: ClassId) {
    let original = universe.class(class).clone();
    let mut updated = original.clone();
    for f in updated
        .fields
        .iter_mut()
        .chain(updated.static_fields.iter_mut())
    {
        f.ty = plan.rewrite_ty(&f.ty);
    }
    for (idx, m) in updated.methods.iter_mut().enumerate() {
        m.sig = plan.method_sigs[&(class, idx as u16)];
        m.params = m.params.iter().map(|t| plan.rewrite_ty(t)).collect();
        m.ret = plan.rewrite_ty(&m.ret);
        if let Some(body) = &m.body {
            // Static methods stay static here (no receiver shift); own-static
            // access still goes through discover only for *substitutable*
            // classes, which `class` is not — so plain instance context.
            m.body = Some(rewrite_body(universe, plan, BodyCtx::instance(class), body));
        }
    }
    universe.define(class, updated);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::plan::build_plan;
    use rafda_classmodel::{sample, verify_universe};

    fn generated_figure2() -> (ClassUniverse, TransformPlan, sample::SampleIds) {
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        let report = analyze(&u);
        let plan = build_plan(
            &mut u,
            &report,
            &[ids.x, ids.y, ids.z],
            &["SOAP".to_owned(), "RMI".to_owned()],
        );
        generate_families(&mut u, &plan);
        (u, plan, ids)
    }

    #[test]
    fn generated_universe_verifies() {
        let (u, _, _) = generated_figure2();
        verify_universe(&u).unwrap();
    }

    #[test]
    fn x_o_int_matches_figure3_surface() {
        let (u, plan, ids) = generated_figure2();
        let fx = plan.family(ids.x).unwrap();
        let c = u.class(fx.obj_int);
        assert_eq!(c.kind, ClassKind::Interface);
        let names: Vec<&str> = c.methods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["get_y", "set_y", "m"]);
        // get_y returns Y_O_Int.
        let fy = plan.family(ids.y).unwrap();
        assert_eq!(c.methods[0].ret, Ty::Object(fy.obj_int));
        assert_eq!(c.methods[1].params, vec![Ty::Object(fy.obj_int)]);
    }

    #[test]
    fn x_o_local_implements_interface_with_accessor_bodies() {
        let (u, plan, ids) = generated_figure2();
        let fx = plan.family(ids.x).unwrap();
        let c = u.class(fx.obj_local);
        assert!(c.interfaces.contains(&fx.obj_int));
        assert_eq!(c.ctors.len(), 1);
        assert!(c.methods[c.ctors[0] as usize].params.is_empty());
        let m = &c.methods[c.method_index("m").unwrap() as usize];
        let body = m.body.as_ref().unwrap();
        // m uses interface calls only (get_y then n), no direct GetField.
        assert!(body
            .code
            .iter()
            .all(|i| !matches!(i, Insn::GetField(fr) if fr.owner != fx.obj_local)));
        assert!(u.is_subtype(fx.obj_local, fx.obj_int));
    }

    #[test]
    fn proxies_are_native_and_chain_to_interface() {
        let (u, plan, ids) = generated_figure2();
        let fx = plan.family(ids.x).unwrap();
        for (proto, p) in &fx.obj_proxies {
            let c = u.class(*p);
            assert!(c.name.contains(proto));
            assert!(u.is_subtype(*p, fx.obj_int));
            assert_eq!(c.fields.len(), 2, "__node/__oid");
            assert_eq!(c.fields[PROXY_NODE_FIELD].name, "__node");
            assert_eq!(c.fields[PROXY_OID_FIELD].name, "__oid");
            for m in &c.methods {
                if !m.is_ctor() {
                    assert!(m.is_native, "{} must be native", m.name);
                }
            }
        }
    }

    #[test]
    fn factories_match_figure5() {
        let (u, plan, ids) = generated_figure2();
        let fx = plan.family(ids.x).unwrap();
        let of = u.class(fx.obj_factory);
        let make = &of.methods[of.method_index("make").unwrap() as usize];
        assert!(make.is_native && make.is_static);
        assert_eq!(make.ret, Ty::Object(fx.obj_int));
        let init = &of.methods[of.method_index("init$0").unwrap() as usize];
        assert!(init.is_static && !init.is_native);
        assert!(init.body.is_some());

        let cf = u.class(fx.cls_factory.unwrap());
        let discover = &cf.methods[cf.method_index("discover").unwrap() as usize];
        assert!(discover.is_native && discover.is_static);
        let clinit = &cf.methods[cf.method_index("clinit").unwrap() as usize];
        assert!(clinit.body.is_some());
    }

    #[test]
    fn cls_local_p_matches_figure4() {
        let (u, plan, ids) = generated_figure2();
        let fx = plan.family(ids.x).unwrap();
        let c = u.class(fx.cls_local.unwrap());
        // Members: ctor, get_z, set_z, p.
        let names: Vec<&str> = c.methods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["<init>$0", "get_z", "set_z", "p"]);
        let p = &c.methods[3];
        assert!(!p.is_static, "p was made non-static");
        let body = p.body.as_ref().unwrap();
        // p's body: load this, invoke get_z, load i, invoke q, return.
        assert_eq!(body.code[0], Insn::LoadLocal(0));
        assert!(matches!(body.code[1], Insn::Invoke { .. }));
    }

    #[test]
    fn y_family_exposes_static_k() {
        let (u, plan, ids) = generated_figure2();
        let fy = plan.family(ids.y).unwrap();
        let ci = u.class(fy.cls_int.unwrap());
        assert!(ci.method_index("get_K").is_some());
        assert!(ci.method_index("set_K").is_some());
    }
}
