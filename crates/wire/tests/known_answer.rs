//! Known-answer tests: exact byte / text snapshots of each codec, so the
//! wire formats cannot drift silently (two nodes of different builds must
//! interoperate).

use rafda_wire::{
    CorbaCodec, Protocol, Reply, Request, RmiCodec, SoapCodec, TraceContext, WireValue,
};

fn call_request() -> Request {
    Request::Call {
        object: 5,
        method: "tick@7".to_owned(),
        args: vec![WireValue::Long(258), WireValue::Bool(true)],
    }
}

fn sample_ctx() -> TraceContext {
    TraceContext {
        trace_id: 0x0B,
        span_id: 0x0C,
        parent_span_id: 0x0A,
    }
}

#[test]
fn rmi_request_bytes_are_stable() {
    let bytes = RmiCodec::new().encode_request(0x0102, sample_ctx(), &call_request());
    let expected: Vec<u8> = vec![
        b'J', b'R', b'M', b'I', // magic
        5,    // version (3 = message id; 4 = + trace context; 5 = + reply objver)
        0x02, 0x01, 0, 0, 0, 0, 0, 0, // message id u64 LE
        0x0B, 0, 0, 0, 0, 0, 0, 0, // trace id u64 LE
        0x0C, 0, 0, 0, 0, 0, 0, 0, // span id u64 LE
        0x0A, 0, 0, 0, 0, 0, 0, 0, // parent span id u64 LE
        0, // R_CALL
        5, 0, 0, 0, 0, 0, 0, 0, // object id u64 LE
        6, 0, 0, 0, // method length u32
        b't', b'i', b'c', b'k', b'@', b'7', // method
        2, 0, 0, 0, // argc
        3, // T_LONG
        2, 1, 0, 0, 0, 0, 0, 0, // 258 LE
        1, // T_BOOL
        1, // true
    ];
    assert_eq!(bytes, expected);
}

#[test]
fn rmi_reply_bytes_are_stable() {
    let bytes =
        RmiCodec::new().encode_reply(7, TraceContext::NONE, 9, &Reply::Value(WireValue::Int(-1)));
    let expected: Vec<u8> = vec![
        b'J', b'R', b'M', b'I', 5, // version
        7, 0, 0, 0, 0, 0, 0, 0, // message id u64 LE
        0, 0, 0, 0, 0, 0, 0, 0, // trace id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // span id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // parent span id (NONE)
        9, 0, 0, 0, 0, 0, 0, 0, // object property version u64 LE
        0, // P_VALUE
        2, // T_INT
        0xFF, 0xFF, 0xFF, 0xFF,
    ];
    assert_eq!(bytes, expected);
}

#[test]
fn corba_header_and_alignment_are_stable() {
    let bytes = CorbaCodec::new().encode_request(7, sample_ctx(), &Request::Fetch { object: 1 });
    // "GIOP" + version 1.5, pad to 8, message id u64, trace context (3×u64)
    // at 16..40, tag R_FETCH(3) at 40, pad to 48, object u64.
    assert_eq!(&bytes[..6], b"GIOP\x01\x05");
    assert_eq!(&bytes[6..8], &[0, 0], "alignment pad before id");
    assert_eq!(&bytes[8..16], &7u64.to_le_bytes());
    assert_eq!(&bytes[16..24], &0x0Bu64.to_le_bytes());
    assert_eq!(&bytes[24..32], &0x0Cu64.to_le_bytes());
    assert_eq!(&bytes[32..40], &0x0Au64.to_le_bytes());
    assert_eq!(bytes[40], 3);
    assert_eq!(&bytes[41..48], &[0; 7], "alignment pad before object");
    assert_eq!(&bytes[48..56], &1u64.to_le_bytes());
    assert_eq!(bytes.len(), 56);
}

#[test]
fn soap_request_text_is_stable() {
    let xml = String::from_utf8(SoapCodec::new().encode_request(
        12,
        sample_ctx(),
        &Request::Discover {
            class: "X".to_owned(),
        },
    ))
    .unwrap();
    assert_eq!(
        xml,
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\" \
         xmlns:rafda=\"http://rafda.dcs.st-and.ac.uk/ns/2003\">\n\
         <soap:Header><rafda:mid>12</rafda:mid>\
         <rafda:trace id=\"11\" span=\"12\" parent=\"10\"/></soap:Header>\n\
         <soap:Body><rafda:discover class=\"X\"/></soap:Body>\n\
         </soap:Envelope>\n"
    );
}

#[test]
fn soap_value_markup_is_stable() {
    let xml = String::from_utf8(SoapCodec::new().encode_reply(
        0,
        TraceContext::NONE,
        0,
        &Reply::Value(WireValue::Array(vec![
            WireValue::Int(1),
            WireValue::Str("a<b".to_owned()),
            WireValue::Remote {
                node: 2,
                object: 9,
                class: "C_O_Local".to_owned(),
            },
        ])),
    ))
    .unwrap();
    assert!(
        xml.contains(
            "<rafda:result><v t=\"array\"><v t=\"int\">1</v><v t=\"string\">a&lt;b</v>\
         <v t=\"ref\" node=\"2\" object=\"9\" class=\"C_O_Local\"/></v></rafda:result>"
        ),
        "{xml}"
    );
}

#[test]
fn message_ids_and_contexts_roundtrip_through_every_codec() {
    for codec in [
        Box::new(RmiCodec::new()) as Box<dyn Protocol>,
        Box::new(CorbaCodec::new()),
        Box::new(SoapCodec::new()),
    ] {
        for id in [0u64, 1, 255, 1 << 32, u64::MAX] {
            let ctx = TraceContext {
                trace_id: id ^ 0x5A,
                span_id: id.wrapping_add(1),
                parent_span_id: id / 2,
            };
            let req = codec.encode_request(id, ctx, &call_request());
            let (back, back_ctx, body) = codec.decode_request(&req).unwrap();
            assert_eq!(back, id, "{} request id", codec.name());
            assert_eq!(back_ctx, ctx, "{} request ctx", codec.name());
            assert_eq!(body, call_request());
            let ver = id ^ 0x33;
            let rep = codec.encode_reply(id, ctx, ver, &Reply::Fault("f".to_owned()));
            let (back, back_ctx, back_ver, _) = codec.decode_reply(&rep).unwrap();
            assert_eq!(back, id, "{} reply id", codec.name());
            assert_eq!(back_ctx, ctx, "{} reply ctx", codec.name());
            assert_eq!(back_ver, ver, "{} reply object version", codec.name());
        }
    }
}

#[test]
fn cross_codec_frames_are_rejected() {
    let rmi_frame = RmiCodec::new().encode_request(1, TraceContext::NONE, &call_request());
    let soap_frame = SoapCodec::new().encode_request(1, TraceContext::NONE, &call_request());
    let corba_frame = CorbaCodec::new().encode_request(1, TraceContext::NONE, &call_request());
    assert!(CorbaCodec::new().decode_request(&rmi_frame).is_err());
    assert!(RmiCodec::new().decode_request(&corba_frame).is_err());
    assert!(RmiCodec::new().decode_request(&soap_frame).is_err());
    assert!(SoapCodec::new().decode_request(&rmi_frame).is_err());
}

#[test]
fn empty_and_min_size_frames() {
    for codec in [
        Box::new(RmiCodec::new()) as Box<dyn Protocol>,
        Box::new(CorbaCodec::new()),
        Box::new(SoapCodec::new()),
    ] {
        assert!(codec.decode_request(&[]).is_err());
        assert!(codec.decode_reply(&[]).is_err());
        assert!(codec.decode_request(&[0u8; 3]).is_err());
    }
}
