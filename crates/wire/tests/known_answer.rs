//! Known-answer tests: exact byte / text snapshots of each codec, so the
//! wire formats cannot drift silently (two nodes of different builds must
//! interoperate).

use rafda_wire::{
    CorbaCodec, Protocol, Reply, Request, RmiCodec, SoapCodec, TraceContext, WireValue,
};

fn call_request() -> Request {
    Request::Call {
        object: 5,
        method: "tick@7".to_owned(),
        args: vec![WireValue::Long(258), WireValue::Bool(true)],
    }
}

fn sample_ctx() -> TraceContext {
    TraceContext {
        trace_id: 0x0B,
        span_id: 0x0C,
        parent_span_id: 0x0A,
    }
}

#[test]
fn rmi_request_bytes_are_stable() {
    let bytes = RmiCodec::new()
        .encode_request(0x0102, sample_ctx(), &call_request())
        .unwrap();
    let expected: Vec<u8> = vec![
        b'J', b'R', b'M', b'I', // magic
        7,    // version (3 = message id; 4 = + trace context; 5 = + reply
        //   objver; 6 = + replica-sync/promote request tags; 7 = + batch
        //   request/reply tags)
        0x02, 0x01, 0, 0, 0, 0, 0, 0, // message id u64 LE
        0x0B, 0, 0, 0, 0, 0, 0, 0, // trace id u64 LE
        0x0C, 0, 0, 0, 0, 0, 0, 0, // span id u64 LE
        0x0A, 0, 0, 0, 0, 0, 0, 0, // parent span id u64 LE
        0, // R_CALL
        5, 0, 0, 0, 0, 0, 0, 0, // object id u64 LE
        6, 0, 0, 0, // method length u32
        b't', b'i', b'c', b'k', b'@', b'7', // method
        2, 0, 0, 0, // argc
        3, // T_LONG
        2, 1, 0, 0, 0, 0, 0, 0, // 258 LE
        1, // T_BOOL
        1, // true
    ];
    assert_eq!(bytes, expected);
}

#[test]
fn rmi_reply_bytes_are_stable() {
    let bytes = RmiCodec::new()
        .encode_reply(7, TraceContext::NONE, 9, &Reply::Value(WireValue::Int(-1)))
        .unwrap();
    let expected: Vec<u8> = vec![
        b'J', b'R', b'M', b'I', 7, // version
        7, 0, 0, 0, 0, 0, 0, 0, // message id u64 LE
        0, 0, 0, 0, 0, 0, 0, 0, // trace id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // span id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // parent span id (NONE)
        9, 0, 0, 0, 0, 0, 0, 0, // object property version u64 LE
        0, // P_VALUE
        2, // T_INT
        0xFF, 0xFF, 0xFF, 0xFF,
    ];
    assert_eq!(bytes, expected);
}

#[test]
fn corba_header_and_alignment_are_stable() {
    let bytes = CorbaCodec::new()
        .encode_request(7, sample_ctx(), &Request::Fetch { object: 1 })
        .unwrap();
    // "GIOP" + version 1.7, pad to 8, message id u64, trace context (3×u64)
    // at 16..40, tag R_FETCH(3) at 40, pad to 48, object u64.
    assert_eq!(&bytes[..6], b"GIOP\x01\x07");
    assert_eq!(&bytes[6..8], &[0, 0], "alignment pad before id");
    assert_eq!(&bytes[8..16], &7u64.to_le_bytes());
    assert_eq!(&bytes[16..24], &0x0Bu64.to_le_bytes());
    assert_eq!(&bytes[24..32], &0x0Cu64.to_le_bytes());
    assert_eq!(&bytes[32..40], &0x0Au64.to_le_bytes());
    assert_eq!(bytes[40], 3);
    assert_eq!(&bytes[41..48], &[0; 7], "alignment pad before object");
    assert_eq!(&bytes[48..56], &1u64.to_le_bytes());
    assert_eq!(bytes.len(), 56);
}

fn replica_sync_request() -> Request {
    Request::ReplicaSync {
        object: 3,
        version: 2,
        state: WireValue::ObjectState {
            class: "C".to_owned(),
            fields: vec![WireValue::Int(7)],
        },
    }
}

#[test]
fn rmi_replica_sync_bytes_are_stable() {
    let bytes = RmiCodec::new()
        .encode_request(1, TraceContext::NONE, &replica_sync_request())
        .unwrap();
    let expected: Vec<u8> = vec![
        b'J', b'R', b'M', b'I', 7, // version
        1, 0, 0, 0, 0, 0, 0, 0, // message id u64 LE
        0, 0, 0, 0, 0, 0, 0, 0, // trace id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // span id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // parent span id (NONE)
        6, // R_REPLICA
        3, 0, 0, 0, 0, 0, 0, 0, // object id u64 LE
        2, 0, 0, 0, 0, 0, 0, 0, // snapshot version u64 LE
        9, // T_STATE
        1, 0, 0, 0,    // class name length u32
        b'C', // class name
        1, 0, 0, 0, // field count u32
        2, // T_INT
        7, 0, 0, 0, // 7 LE
    ];
    assert_eq!(bytes, expected);
}

#[test]
fn rmi_promote_bytes_are_stable() {
    let bytes = RmiCodec::new()
        .encode_request(
            1,
            TraceContext::NONE,
            &Request::Promote { node: 4, object: 9 },
        )
        .unwrap();
    let expected: Vec<u8> = vec![
        b'J', b'R', b'M', b'I', 7, // version
        1, 0, 0, 0, 0, 0, 0, 0, // message id u64 LE
        0, 0, 0, 0, 0, 0, 0, 0, // trace id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // span id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // parent span id (NONE)
        7, // R_PROMOTE
        4, 0, 0, 0, // crashed node u32 LE
        9, 0, 0, 0, 0, 0, 0, 0, // its export id u64 LE
    ];
    assert_eq!(bytes, expected);
}

#[test]
fn corba_promote_alignment_is_stable() {
    let bytes = CorbaCodec::new()
        .encode_request(7, sample_ctx(), &Request::Promote { node: 4, object: 9 })
        .unwrap();
    // Header as for any request, then tag R_PROMOTE(7) at 40, the node u32
    // aligned up to 44, the object u64 aligned up to 48.
    assert_eq!(&bytes[..6], b"GIOP\x01\x07");
    assert_eq!(bytes[40], 7);
    assert_eq!(&bytes[41..44], &[0; 3], "alignment pad before node");
    assert_eq!(&bytes[44..48], &4u32.to_le_bytes());
    assert_eq!(&bytes[48..56], &9u64.to_le_bytes());
    assert_eq!(bytes.len(), 56);
}

#[test]
fn corba_replica_sync_roundtrips_with_known_header() {
    let bytes = CorbaCodec::new()
        .encode_request(7, sample_ctx(), &replica_sync_request())
        .unwrap();
    assert_eq!(&bytes[..6], b"GIOP\x01\x07");
    assert_eq!(bytes[40], 6, "R_REPLICA tag");
    let (id, ctx, req) = CorbaCodec::new().decode_request(&bytes).unwrap();
    assert_eq!((id, ctx), (7, sample_ctx()));
    assert_eq!(req, replica_sync_request());
}

#[test]
fn soap_replica_sync_text_is_stable() {
    let xml = String::from_utf8(
        SoapCodec::new()
            .encode_request(1, sample_ctx(), &replica_sync_request())
            .unwrap(),
    )
    .unwrap();
    assert!(
        xml.contains(
            "<soap:Body><rafda:replicasync object=\"3\" version=\"2\">\
             <v t=\"state\" class=\"C\"><v t=\"int\">7</v></v></rafda:replicasync></soap:Body>"
        ),
        "{xml}"
    );
    let (_, _, back) = SoapCodec::new().decode_request(xml.as_bytes()).unwrap();
    assert_eq!(back, replica_sync_request());
}

#[test]
fn soap_promote_text_is_stable() {
    let xml = String::from_utf8(
        SoapCodec::new()
            .encode_request(1, sample_ctx(), &Request::Promote { node: 4, object: 9 })
            .unwrap(),
    )
    .unwrap();
    assert!(
        xml.contains("<soap:Body><rafda:promote node=\"4\" object=\"9\"/></soap:Body>"),
        "{xml}"
    );
    let (_, _, back) = SoapCodec::new().decode_request(xml.as_bytes()).unwrap();
    assert_eq!(back, Request::Promote { node: 4, object: 9 });
}

#[test]
fn pre_failover_rmi_v5_frames_still_parse() {
    // Version 6 changed no header or body layout for the pre-existing
    // request/reply kinds, so a v5 frame differs from a v6 frame only in
    // the version byte (index 4).
    let codec = RmiCodec::new();
    let mut req5 = codec
        .encode_request(0x0102, sample_ctx(), &call_request())
        .unwrap();
    req5[4] = 5;
    let (id, ctx, body) = codec.decode_request(&req5).unwrap();
    assert_eq!((id, ctx), (0x0102, sample_ctx()));
    assert_eq!(body, call_request());
    let mut rep5 = codec
        .encode_reply(7, sample_ctx(), 9, &Reply::Value(WireValue::Int(-1)))
        .unwrap();
    rep5[4] = 5;
    let (id, ctx, ver, reply) = codec.decode_reply(&rep5).unwrap();
    assert_eq!((id, ctx, ver), (7, sample_ctx(), 9));
    assert_eq!(reply, Reply::Value(WireValue::Int(-1)));
}

#[test]
fn pre_failover_giop_minor_5_frames_still_parse() {
    // Same argument as for RMI: only the minor version byte (index 5)
    // distinguishes a minor-5 frame from a minor-6 frame.
    let codec = CorbaCodec::new();
    let mut req5 = codec
        .encode_request(7, sample_ctx(), &Request::Fetch { object: 1 })
        .unwrap();
    req5[5] = 5;
    let (id, ctx, body) = codec.decode_request(&req5).unwrap();
    assert_eq!((id, ctx), (7, sample_ctx()));
    assert_eq!(body, Request::Fetch { object: 1 });
    let mut rep5 = codec
        .encode_reply(7, sample_ctx(), 3, &Reply::Fault("f".to_owned()))
        .unwrap();
    rep5[5] = 5;
    let (id, ctx, ver, reply) = codec.decode_reply(&rep5).unwrap();
    assert_eq!((id, ctx, ver), (7, sample_ctx(), 3));
    assert_eq!(reply, Reply::Fault("f".to_owned()));
}

#[test]
fn pre_failover_soap_frames_still_parse() {
    // A verbatim PR-3-era envelope (mid + trace + objver, no failover
    // vocabulary anywhere) must keep decoding.
    let req = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
               <soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\" \
               xmlns:rafda=\"http://rafda.dcs.st-and.ac.uk/ns/2003\">\n\
               <soap:Header><rafda:mid>12</rafda:mid>\
               <rafda:trace id=\"11\" span=\"12\" parent=\"10\"/></soap:Header>\n\
               <soap:Body><rafda:discover class=\"X\"/></soap:Body>\n\
               </soap:Envelope>\n";
    let (id, ctx, body) = SoapCodec::new().decode_request(req.as_bytes()).unwrap();
    assert_eq!((id, ctx), (12, sample_ctx()));
    assert_eq!(
        body,
        Request::Discover {
            class: "X".to_owned()
        }
    );
    let rep = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
               <soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\" \
               xmlns:rafda=\"http://rafda.dcs.st-and.ac.uk/ns/2003\">\n\
               <soap:Header><rafda:mid>12</rafda:mid>\
               <rafda:trace id=\"11\" span=\"12\" parent=\"10\"/>\
               <rafda:objver>19</rafda:objver></soap:Header>\n\
               <soap:Body><rafda:result><v t=\"int\">9</v></rafda:result></soap:Body>\n\
               </soap:Envelope>\n";
    let (id, ctx, ver, reply) = SoapCodec::new().decode_reply(rep.as_bytes()).unwrap();
    assert_eq!((id, ctx, ver), (12, sample_ctx(), 19));
    assert_eq!(reply, Reply::Value(WireValue::Int(9)));
}

#[test]
fn soap_request_text_is_stable() {
    let xml = String::from_utf8(
        SoapCodec::new()
            .encode_request(
                12,
                sample_ctx(),
                &Request::Discover {
                    class: "X".to_owned(),
                },
            )
            .unwrap(),
    )
    .unwrap();
    assert_eq!(
        xml,
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\" \
         xmlns:rafda=\"http://rafda.dcs.st-and.ac.uk/ns/2003\">\n\
         <soap:Header><rafda:mid>12</rafda:mid>\
         <rafda:trace id=\"11\" span=\"12\" parent=\"10\"/></soap:Header>\n\
         <soap:Body><rafda:discover class=\"X\"/></soap:Body>\n\
         </soap:Envelope>\n"
    );
}

#[test]
fn soap_value_markup_is_stable() {
    let xml = String::from_utf8(
        SoapCodec::new()
            .encode_reply(
                0,
                TraceContext::NONE,
                0,
                &Reply::Value(WireValue::Array(vec![
                    WireValue::Int(1),
                    WireValue::Str("a<b".to_owned()),
                    WireValue::Remote {
                        node: 2,
                        object: 9,
                        class: "C_O_Local".to_owned(),
                    },
                ])),
            )
            .unwrap(),
    )
    .unwrap();
    assert!(
        xml.contains(
            "<rafda:result><v t=\"array\"><v t=\"int\">1</v><v t=\"string\">a&lt;b</v>\
         <v t=\"ref\" node=\"2\" object=\"9\" class=\"C_O_Local\"/></v></rafda:result>"
        ),
        "{xml}"
    );
}

#[test]
fn message_ids_and_contexts_roundtrip_through_every_codec() {
    for codec in [
        Box::new(RmiCodec::new()) as Box<dyn Protocol>,
        Box::new(CorbaCodec::new()),
        Box::new(SoapCodec::new()),
    ] {
        for id in [0u64, 1, 255, 1 << 32, u64::MAX] {
            let ctx = TraceContext {
                trace_id: id ^ 0x5A,
                span_id: id.wrapping_add(1),
                parent_span_id: id / 2,
            };
            let req = codec.encode_request(id, ctx, &call_request()).unwrap();
            let (back, back_ctx, body) = codec.decode_request(&req).unwrap();
            assert_eq!(back, id, "{} request id", codec.name());
            assert_eq!(back_ctx, ctx, "{} request ctx", codec.name());
            assert_eq!(body, call_request());
            let ver = id ^ 0x33;
            let rep = codec
                .encode_reply(id, ctx, ver, &Reply::Fault("f".to_owned()))
                .unwrap();
            let (back, back_ctx, back_ver, _) = codec.decode_reply(&rep).unwrap();
            assert_eq!(back, id, "{} reply id", codec.name());
            assert_eq!(back_ctx, ctx, "{} reply ctx", codec.name());
            assert_eq!(back_ver, ver, "{} reply object version", codec.name());
        }
    }
}

#[test]
fn cross_codec_frames_are_rejected() {
    let rmi_frame = RmiCodec::new()
        .encode_request(1, TraceContext::NONE, &call_request())
        .unwrap();
    let soap_frame = SoapCodec::new()
        .encode_request(1, TraceContext::NONE, &call_request())
        .unwrap();
    let corba_frame = CorbaCodec::new()
        .encode_request(1, TraceContext::NONE, &call_request())
        .unwrap();
    assert!(CorbaCodec::new().decode_request(&rmi_frame).is_err());
    assert!(RmiCodec::new().decode_request(&corba_frame).is_err());
    assert!(RmiCodec::new().decode_request(&soap_frame).is_err());
    assert!(SoapCodec::new().decode_request(&rmi_frame).is_err());
}

#[test]
fn empty_and_min_size_frames() {
    for codec in [
        Box::new(RmiCodec::new()) as Box<dyn Protocol>,
        Box::new(CorbaCodec::new()),
        Box::new(SoapCodec::new()),
    ] {
        assert!(codec.decode_request(&[]).is_err());
        assert!(codec.decode_reply(&[]).is_err());
        assert!(codec.decode_request(&[0u8; 3]).is_err());
    }
}

fn batch_request() -> Request {
    Request::Batch(vec![
        Request::Call {
            object: 3,
            method: "set_x@2".to_owned(),
            args: vec![WireValue::Int(9)],
        },
        Request::Fetch { object: 3 },
    ])
}

#[test]
fn rmi_batch_bytes_are_stable() {
    let bytes = RmiCodec::new()
        .encode_request(1, TraceContext::NONE, &batch_request())
        .unwrap();
    let expected: Vec<u8> = vec![
        b'J', b'R', b'M', b'I', 7, // version
        1, 0, 0, 0, 0, 0, 0, 0, // message id u64 LE
        0, 0, 0, 0, 0, 0, 0, 0, // trace id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // span id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // parent span id (NONE)
        8, // R_BATCH
        2, 0, 0, 0, // op count u32
        0, // R_CALL
        3, 0, 0, 0, 0, 0, 0, 0, // object id u64 LE
        7, 0, 0, 0, // method length u32
        b's', b'e', b't', b'_', b'x', b'@', b'2', // method
        1, 0, 0, 0, // argc
        2, // T_INT
        9, 0, 0, 0, // 9 LE
        3, // R_FETCH
        3, 0, 0, 0, 0, 0, 0, 0, // object id u64 LE
    ];
    assert_eq!(bytes, expected);
}

#[test]
fn rmi_batch_reply_bytes_are_stable() {
    let reply = Reply::Batch(vec![
        (4, Reply::Value(WireValue::Null)),
        (0, Reply::Fault("x".to_owned())),
    ]);
    let bytes = RmiCodec::new()
        .encode_reply(1, TraceContext::NONE, 0, &reply)
        .unwrap();
    let expected: Vec<u8> = vec![
        b'J', b'R', b'M', b'I', 7, // version
        1, 0, 0, 0, 0, 0, 0, 0, // message id u64 LE
        0, 0, 0, 0, 0, 0, 0, 0, // trace id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // span id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // parent span id (NONE)
        0, 0, 0, 0, 0, 0, 0, 0, // outer object version (batches carry none)
        3, // P_BATCH
        2, 0, 0, 0, // op count u32
        4, 0, 0, 0, 0, 0, 0, 0, // op 0 object version u64 LE
        0, // P_VALUE
        0, // T_NULL
        0, 0, 0, 0, 0, 0, 0, 0, // op 1 object version u64 LE
        2, // P_FAULT
        1, 0, 0, 0,    // fault length u32
        b'x', // fault text
    ];
    assert_eq!(bytes, expected);
}

#[test]
fn corba_batch_roundtrips_with_known_header() {
    let bytes = CorbaCodec::new()
        .encode_request(7, sample_ctx(), &batch_request())
        .unwrap();
    assert_eq!(&bytes[..6], b"GIOP\x01\x07");
    assert_eq!(bytes[40], 8, "R_BATCH tag");
    let (id, ctx, req) = CorbaCodec::new().decode_request(&bytes).unwrap();
    assert_eq!((id, ctx), (7, sample_ctx()));
    assert_eq!(req, batch_request());
}

#[test]
fn soap_batch_text_is_stable() {
    let xml = String::from_utf8(
        SoapCodec::new()
            .encode_request(1, sample_ctx(), &batch_request())
            .unwrap(),
    )
    .unwrap();
    assert!(
        xml.contains(
            "<soap:Body><rafda:batch>\
             <rafda:call object=\"3\" method=\"set_x@2\"><v t=\"int\">9</v></rafda:call>\
             <rafda:fetch object=\"3\"/>\
             </rafda:batch></soap:Body>"
        ),
        "{xml}"
    );
    let (_, _, back) = SoapCodec::new().decode_request(xml.as_bytes()).unwrap();
    assert_eq!(back, batch_request());
}

#[test]
fn soap_batch_reply_text_is_stable() {
    let reply = Reply::Batch(vec![
        (4, Reply::Value(WireValue::Null)),
        (0, Reply::Fault("x".to_owned())),
    ]);
    let xml = String::from_utf8(
        SoapCodec::new()
            .encode_reply(1, sample_ctx(), 0, &reply)
            .unwrap(),
    )
    .unwrap();
    assert!(
        xml.contains(
            "<soap:Body><rafda:batchresult>\
             <rafda:op objver=\"4\"><rafda:result><v t=\"null\"/></rafda:result></rafda:op>\
             <rafda:op objver=\"0\"><soap:Fault><faultstring>x</faultstring></soap:Fault></rafda:op>\
             </rafda:batchresult></soap:Body>"
        ),
        "{xml}"
    );
    let (_, _, _, back) = SoapCodec::new().decode_reply(xml.as_bytes()).unwrap();
    assert_eq!(back, reply);
}

#[test]
fn pre_batching_v6_frames_still_parse() {
    // Version 7 changed no header or body layout for the pre-existing
    // request/reply kinds, so a v6 frame differs from a v7 frame only in
    // the version byte (RMI index 4, GIOP minor at index 5).
    let rmi = RmiCodec::new();
    let mut req6 = rmi
        .encode_request(0x0102, sample_ctx(), &replica_sync_request())
        .unwrap();
    req6[4] = 6;
    let (id, ctx, body) = rmi.decode_request(&req6).unwrap();
    assert_eq!((id, ctx), (0x0102, sample_ctx()));
    assert_eq!(body, replica_sync_request());
    let mut rep6 = rmi
        .encode_reply(7, sample_ctx(), 9, &Reply::Value(WireValue::Int(-1)))
        .unwrap();
    rep6[4] = 6;
    let (id, ctx, ver, reply) = rmi.decode_reply(&rep6).unwrap();
    assert_eq!((id, ctx, ver), (7, sample_ctx(), 9));
    assert_eq!(reply, Reply::Value(WireValue::Int(-1)));

    let corba = CorbaCodec::new();
    let mut creq6 = corba
        .encode_request(7, sample_ctx(), &Request::Fetch { object: 1 })
        .unwrap();
    creq6[5] = 6;
    let (id, ctx, body) = corba.decode_request(&creq6).unwrap();
    assert_eq!((id, ctx), (7, sample_ctx()));
    assert_eq!(body, Request::Fetch { object: 1 });
}
