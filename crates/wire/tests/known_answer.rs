//! Known-answer tests: exact byte / text snapshots of each codec, so the
//! wire formats cannot drift silently (two nodes of different builds must
//! interoperate).

use rafda_wire::{CorbaCodec, Protocol, Reply, Request, RmiCodec, SoapCodec, WireValue};

fn call_request() -> Request {
    Request::Call {
        object: 5,
        method: "tick@7".to_owned(),
        args: vec![WireValue::Long(258), WireValue::Bool(true)],
    }
}

#[test]
fn rmi_request_bytes_are_stable() {
    let bytes = RmiCodec::new().encode_request(&call_request());
    let expected: Vec<u8> = vec![
        b'J', b'R', b'M', b'I', // magic
        2,    // version
        0,    // R_CALL
        5, 0, 0, 0, 0, 0, 0, 0, // object id u64 LE
        6, 0, 0, 0, // method length u32
        b't', b'i', b'c', b'k', b'@', b'7', // method
        2, 0, 0, 0, // argc
        3, // T_LONG
        2, 1, 0, 0, 0, 0, 0, 0, // 258 LE
        1, // T_BOOL
        1, // true
    ];
    assert_eq!(bytes, expected);
}

#[test]
fn rmi_reply_bytes_are_stable() {
    let bytes = RmiCodec::new().encode_reply(&Reply::Value(WireValue::Int(-1)));
    let expected: Vec<u8> = vec![
        b'J', b'R', b'M', b'I',
        2, // version
        0, // P_VALUE
        2, // T_INT
        0xFF, 0xFF, 0xFF, 0xFF,
    ];
    assert_eq!(bytes, expected);
}

#[test]
fn corba_header_and_alignment_are_stable() {
    let bytes = CorbaCodec::new().encode_request(&Request::Fetch { object: 1 });
    // "GIOP" + version 1.2 + tag R_FETCH(3) at offset 6, pad to 8, u64.
    assert_eq!(&bytes[..6], b"GIOP\x01\x02");
    assert_eq!(bytes[6], 3);
    assert_eq!(bytes[7], 0, "alignment pad");
    assert_eq!(&bytes[8..16], &1u64.to_le_bytes());
    assert_eq!(bytes.len(), 16);
}

#[test]
fn soap_request_text_is_stable() {
    let xml = String::from_utf8(SoapCodec::new().encode_request(&Request::Discover {
        class: "X".to_owned(),
    }))
    .unwrap();
    assert_eq!(
        xml,
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\" \
         xmlns:rafda=\"http://rafda.dcs.st-and.ac.uk/ns/2003\">\n\
         <soap:Body><rafda:discover class=\"X\"/></soap:Body>\n\
         </soap:Envelope>\n"
    );
}

#[test]
fn soap_value_markup_is_stable() {
    let xml = String::from_utf8(
        SoapCodec::new().encode_reply(&Reply::Value(WireValue::Array(vec![
            WireValue::Int(1),
            WireValue::Str("a<b".to_owned()),
            WireValue::Remote {
                node: 2,
                object: 9,
                class: "C_O_Local".to_owned(),
            },
        ]))),
    )
    .unwrap();
    assert!(xml.contains(
        "<rafda:result><v t=\"array\"><v t=\"int\">1</v><v t=\"string\">a&lt;b</v>\
         <v t=\"ref\" node=\"2\" object=\"9\" class=\"C_O_Local\"/></v></rafda:result>"
    ), "{xml}");
}

#[test]
fn cross_codec_frames_are_rejected() {
    let rmi_frame = RmiCodec::new().encode_request(&call_request());
    let soap_frame = SoapCodec::new().encode_request(&call_request());
    let corba_frame = CorbaCodec::new().encode_request(&call_request());
    assert!(CorbaCodec::new().decode_request(&rmi_frame).is_err());
    assert!(RmiCodec::new().decode_request(&corba_frame).is_err());
    assert!(RmiCodec::new().decode_request(&soap_frame).is_err());
    assert!(SoapCodec::new().decode_request(&rmi_frame).is_err());
}

#[test]
fn empty_and_min_size_frames() {
    for codec in [
        Box::new(RmiCodec::new()) as Box<dyn Protocol>,
        Box::new(CorbaCodec::new()),
        Box::new(SoapCodec::new()),
    ] {
        assert!(codec.decode_request(&[]).is_err());
        assert!(codec.decode_reply(&[]).is_err());
        assert!(codec.decode_request(&[0u8; 3]).is_err());
    }
}
