//! Property-based round-trip tests: every codec must decode exactly what it
//! encoded, for arbitrary nested values — the invariant the paper's proxy
//! interchangeability rests on.

use proptest::prelude::*;
use rafda_wire::{
    CorbaCodec, Protocol, Reply, Request, RmiCodec, SoapCodec, TraceContext, WireValue,
};

fn arb_ctx() -> impl Strategy<Value = TraceContext> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(trace_id, span_id, parent_span_id)| {
        TraceContext {
            trace_id,
            span_id,
            parent_span_id,
        }
    })
}

fn arb_wire_value() -> impl Strategy<Value = WireValue> {
    let leaf = prop_oneof![
        Just(WireValue::Null),
        any::<bool>().prop_map(WireValue::Bool),
        any::<i32>().prop_map(WireValue::Int),
        any::<i64>().prop_map(WireValue::Long),
        any::<f32>().prop_map(WireValue::Float),
        any::<f64>().prop_map(WireValue::Double),
        ".{0,24}".prop_map(WireValue::Str),
        (any::<u32>(), any::<u64>(), "[A-Za-z_][A-Za-z0-9_]{0,10}").prop_map(
            |(node, object, class)| WireValue::Remote {
                node,
                object,
                class
            }
        ),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(WireValue::Array),
            (
                "[A-Za-z_][A-Za-z0-9_]{0,12}",
                prop::collection::vec(inner, 0..5)
            )
                .prop_map(|(class, fields)| WireValue::ObjectState { class, fields }),
        ]
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        arb_simple_request(),
        prop::collection::vec(arb_simple_request(), 0..4).prop_map(Request::Batch),
    ]
}

fn arb_simple_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            any::<u64>(),
            "[a-z_][a-z0-9_]{0,16}",
            prop::collection::vec(arb_wire_value(), 0..4)
        )
            .prop_map(|(object, method, args)| Request::Call {
                object,
                method,
                args
            }),
        (
            "[A-Z][A-Za-z0-9_]{0,16}",
            any::<u16>(),
            prop::collection::vec(arb_wire_value(), 0..4)
        )
            .prop_map(|(class, ctor, args)| Request::Create { class, ctor, args }),
        "[A-Z][A-Za-z0-9_]{0,16}".prop_map(|class| Request::Discover { class }),
        any::<u64>().prop_map(|object| Request::Fetch { object }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(object, to_node, to_object)| {
            Request::Forward {
                object,
                to_node,
                to_object,
            }
        }),
        (
            arb_wire_value(),
            proptest::option::of((any::<u32>(), any::<u64>()))
        )
            .prop_map(|(v, source)| Request::Install {
                state: WireValue::ObjectState {
                    class: "S".into(),
                    fields: vec![v]
                },
                source,
            }),
        (any::<u64>(), any::<u64>(), arb_wire_value()).prop_map(|(object, version, v)| {
            Request::ReplicaSync {
                object,
                version,
                state: WireValue::ObjectState {
                    class: "R".into(),
                    fields: vec![v],
                },
            }
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(node, object)| Request::Promote { node, object }),
    ]
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        arb_simple_reply(),
        prop::collection::vec((any::<u64>(), arb_simple_reply()), 0..4).prop_map(Reply::Batch),
    ]
}

fn arb_simple_reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        arb_wire_value().prop_map(Reply::Value),
        (
            "[A-Z][A-Za-z0-9_]{0,16}",
            prop::collection::vec(arb_wire_value(), 0..4)
        )
            .prop_map(|(class, fields)| Reply::Exception { class, fields }),
        ".{0,40}".prop_map(Reply::Fault),
    ]
}

fn exact_bits(a: &WireValue, b: &WireValue) -> bool {
    use WireValue::*;
    match (a, b) {
        (Float(x), Float(y)) => x.to_bits() == y.to_bits(),
        (Double(x), Double(y)) => x.to_bits() == y.to_bits(),
        (Array(x), Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| exact_bits(a, b))
        }
        (
            ObjectState {
                class: ca,
                fields: fa,
            },
            ObjectState {
                class: cb,
                fields: fb,
            },
        ) => ca == cb && fa.len() == fb.len() && fa.iter().zip(fb).all(|(a, b)| exact_bits(a, b)),
        (a, b) => a == b,
    }
}

fn reply_exact(a: &Reply, b: &Reply) -> bool {
    match (a, b) {
        (Reply::Value(x), Reply::Value(y)) => exact_bits(x, y),
        (Reply::Batch(xa), Reply::Batch(xb)) => {
            xa.len() == xb.len()
                && xa
                    .iter()
                    .zip(xb)
                    .all(|((va, ra), (vb, rb))| va == vb && reply_exact(ra, rb))
        }
        (
            Reply::Exception {
                class: ca,
                fields: fa,
            },
            Reply::Exception {
                class: cb,
                fields: fb,
            },
        ) => ca == cb && fa.len() == fb.len() && fa.iter().zip(fb).all(|(x, y)| exact_bits(x, y)),
        (a, b) => a == b,
    }
}

fn request_exact(a: &Request, b: &Request) -> bool {
    match (a, b) {
        (
            Request::Call {
                object: oa,
                method: ma,
                args: aa,
            },
            Request::Call {
                object: ob,
                method: mb,
                args: ab,
            },
        ) => {
            oa == ob
                && ma == mb
                && aa.len() == ab.len()
                && aa.iter().zip(ab).all(|(x, y)| exact_bits(x, y))
        }
        (
            Request::Create {
                class: ca,
                ctor: ta,
                args: aa,
            },
            Request::Create {
                class: cb,
                ctor: tb,
                args: ab,
            },
        ) => {
            ca == cb
                && ta == tb
                && aa.len() == ab.len()
                && aa.iter().zip(ab).all(|(x, y)| exact_bits(x, y))
        }
        (
            Request::Install {
                state: sa,
                source: ka,
            },
            Request::Install {
                state: sb,
                source: kb,
            },
        ) => ka == kb && exact_bits(sa, sb),
        (
            Request::ReplicaSync {
                object: oa,
                version: va,
                state: sa,
            },
            Request::ReplicaSync {
                object: ob,
                version: vb,
                state: sb,
            },
        ) => oa == ob && va == vb && exact_bits(sa, sb),
        (Request::Batch(xa), Request::Batch(xb)) => {
            xa.len() == xb.len() && xa.iter().zip(xb).all(|(x, y)| request_exact(x, y))
        }
        (a, b) => a == b,
    }
}

fn codecs() -> Vec<Box<dyn Protocol>> {
    vec![
        Box::new(RmiCodec::new()),
        Box::new(SoapCodec::new()),
        Box::new(CorbaCodec::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_roundtrip_all_codecs(id in any::<u64>(), ctx in arb_ctx(), req in arb_request()) {
        for codec in codecs() {
            let bytes = codec.encode_request(id, ctx, &req).unwrap();
            let (back_id, back_ctx, back) = codec.decode_request(&bytes)
                .unwrap_or_else(|e| panic!("{}: {e}", codec.name()));
            prop_assert_eq!(back_id, id, "{} lost the message id", codec.name());
            prop_assert_eq!(back_ctx, ctx, "{} lost the trace context", codec.name());
            prop_assert!(request_exact(&back, &req), "{}: {back:?} != {req:?}", codec.name());
        }
    }

    #[test]
    fn replies_roundtrip_all_codecs(
        id in any::<u64>(),
        ctx in arb_ctx(),
        ver in any::<u64>(),
        reply in arb_reply(),
    ) {
        for codec in codecs() {
            let bytes = codec.encode_reply(id, ctx, ver, &reply).unwrap();
            let (back_id, back_ctx, back_ver, back) = codec.decode_reply(&bytes)
                .unwrap_or_else(|e| panic!("{}: {e}", codec.name()));
            prop_assert_eq!(back_id, id, "{} lost the message id", codec.name());
            prop_assert_eq!(back_ctx, ctx, "{} lost the trace context", codec.name());
            prop_assert_eq!(back_ver, ver, "{} lost the object version", codec.name());
            prop_assert!(reply_exact(&back, &reply), "{}: {back:?} != {reply:?}", codec.name());
        }
    }

    #[test]
    fn soap_is_never_smaller_than_rmi(req in arb_request()) {
        let rmi = RmiCodec::new().encode_request(1, TraceContext::NONE, &req).unwrap().len();
        let soap = SoapCodec::new().encode_request(1, TraceContext::NONE, &req).unwrap().len();
        prop_assert!(soap > rmi);
    }

    #[test]
    fn binary_decoders_reject_random_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Must error or decode — never panic.
        let _ = RmiCodec::new().decode_request(&bytes);
        let _ = CorbaCodec::new().decode_request(&bytes);
        let _ = SoapCodec::new().decode_request(&bytes);
        let _ = RmiCodec::new().decode_reply(&bytes);
        let _ = CorbaCodec::new().decode_reply(&bytes);
        let _ = SoapCodec::new().decode_reply(&bytes);
    }

    #[test]
    fn truncated_frames_are_rejected_not_panicked(
        id in any::<u64>(),
        ctx in arb_ctx(),
        req in arb_request(),
        reply in arb_reply(),
        cut_seed in any::<usize>(),
    ) {
        // A prefix of a valid frame lost its tail in transit: every codec
        // must report a decode error — never panic, never accept the stump.
        // (SOAP frames end in a cosmetic newline after the root close tag,
        // which is the one byte a parser legitimately tolerates losing.)
        for codec in codecs() {
            let slack = usize::from(codec.name() == "SOAP");
            let frame = codec.encode_request(id, ctx, &req).unwrap();
            let cut = cut_seed % (frame.len() - slack);
            prop_assert!(
                codec.decode_request(&frame[..cut]).is_err(),
                "{} accepted a request truncated to {cut}/{} bytes",
                codec.name(),
                frame.len()
            );
            let frame = codec.encode_reply(id, ctx, 3, &reply).unwrap();
            let cut = cut_seed % (frame.len() - slack);
            prop_assert!(
                codec.decode_reply(&frame[..cut]).is_err(),
                "{} accepted a reply truncated to {cut}/{} bytes",
                codec.name(),
                frame.len()
            );
        }
    }

    #[test]
    fn bitflipped_frames_never_panic_and_corrupt_headers_are_rejected(
        id in any::<u64>(),
        ctx in arb_ctx(),
        req in arb_request(),
        reply in arb_reply(),
        pos_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        // A single flipped bit anywhere must never panic a decoder; a flip
        // inside the 4-byte magic of the binary codecs must be rejected
        // outright (the frame no longer identifies as that protocol).
        for codec in codecs() {
            for (frame, is_reply) in [
                (codec.encode_request(id, ctx, &req).unwrap(), false),
                (codec.encode_reply(id, ctx, 3, &reply).unwrap(), true),
            ] {
                let mut mutated = frame.clone();
                let pos = pos_seed % mutated.len();
                mutated[pos] ^= 1 << bit;
                if is_reply {
                    let _ = codec.decode_reply(&mutated);
                } else {
                    let _ = codec.decode_request(&mutated);
                }
                if codec.name() != "SOAP" {
                    let mut magic_hit = frame;
                    magic_hit[pos_seed % 4] ^= 1 << bit;
                    let rejected = if is_reply {
                        codec.decode_reply(&magic_hit).is_err()
                    } else {
                        codec.decode_request(&magic_hit).is_err()
                    };
                    prop_assert!(rejected, "{} accepted a corrupt magic", codec.name());
                }
            }
        }
    }

    #[test]
    fn bitflipped_frames_never_panic_the_header_decoder(
        id in any::<u64>(),
        ctx in arb_ctx(),
        req in arb_request(),
        pos_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        // The zero-copy header fast path sees raw network bytes before any
        // validation; a flipped bit must never panic it, and whenever the
        // header *does* parse, materialising the payload must also either
        // succeed or error — never panic.
        for codec in codecs() {
            let mut frame = codec.encode_request(id, ctx, &req).unwrap();
            let pos = pos_seed % frame.len();
            frame[pos] ^= 1 << bit;
            if let Ok(header) = codec.decode_request_header(&frame) {
                let _ = header.materialise(None);
            }
        }
    }

    #[test]
    fn oversized_length_prefixes_allocate_bounded_memory(
        id in any::<u64>(),
        ctx in arb_ctx(),
        claimed in (1u32 << 20)..u32::MAX,
        word_seed in any::<usize>(),
    ) {
        // Overwrite one aligned u32 word of the body with a huge length.
        // Whatever field it lands on (string length, arg count, list
        // count), the decoder must fail against the actual buffer size
        // rather than allocating the gigabytes the frame claims. The
        // decoders clamp `with_capacity` to fixed caps, so an accepted
        // decode can only ever hold what the buffer really contained.
        let req = Request::Call {
            object: 1,
            method: "m@1".to_owned(),
            args: vec![WireValue::Str("payload".to_owned()); 4],
        };
        for codec in [
            Box::new(RmiCodec::new()) as Box<dyn Protocol>,
            Box::new(CorbaCodec::new()),
        ] {
            let mut frame = codec.encode_request(id, ctx, &req).unwrap();
            let body = 48; // past both codecs' fixed headers
            let words = (frame.len() - body) / 4;
            let at = body + (word_seed % words) * 4;
            frame[at..at + 4].copy_from_slice(&claimed.to_le_bytes());
            match codec.decode_request(&frame) {
                // Fail fast, or decode something the buffer really held —
                // either way nothing panicked and nothing huge allocated.
                Ok((_, _, back)) => {
                    let reenc = codec.encode_request(id, ctx, &back).unwrap();
                    prop_assert!(
                        reenc.len() <= frame.len() + 64,
                        "{} conjured {} bytes from a {}-byte frame",
                        codec.name(),
                        reenc.len(),
                        frame.len()
                    );
                }
                Err(_) => {}
            }
        }
    }
}
