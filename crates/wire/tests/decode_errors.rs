//! Table-driven decoder error paths: every codec must turn a malformed
//! frame into a typed [`rafda_wire::WireError`] — never a panic, never a
//! silently-wrong value, and never an attacker-sized allocation.

use rafda_wire::{
    CorbaCodec, Protocol, Reply, Request, RmiCodec, SigTable, SoapCodec, TraceContext, WireValue,
};

fn call_request() -> Request {
    Request::Call {
        object: 5,
        method: "averylongmethodname@9".to_owned(),
        args: vec![WireValue::Long(258), WireValue::Bool(true)],
    }
}

fn codecs() -> Vec<Box<dyn Protocol>> {
    vec![
        Box::new(RmiCodec::new()),
        Box::new(CorbaCodec::new()),
        Box::new(SoapCodec::new()),
    ]
}

/// Byte offset of `needle` inside `hay` (the frames are small; a naive
/// scan keeps the tests independent of each codec's header arithmetic).
fn find(hay: &[u8], needle: &[u8]) -> usize {
    hay.windows(needle.len())
        .position(|w| w == needle)
        .unwrap_or_else(|| panic!("pattern {needle:?} not found in frame"))
}

struct Case {
    label: String,
    codec: Box<dyn Protocol>,
    frame: Vec<u8>,
    /// Substring the error message must contain (empty = any error).
    expect: &'static str,
}

/// One corrupt frame per (codec, corruption) pair; each must decode to an
/// error whose message mentions the right cause.
#[test]
fn corrupt_request_frames_are_rejected_with_typed_errors() {
    let method = b"averylongmethodname@9";
    let mut cases = Vec::new();

    for codec in codecs() {
        let frame = codec
            .encode_request(9, TraceContext::NONE, &call_request())
            .unwrap();
        let at = find(&frame, method);

        // Lost the tail in transit, mid-way through a string.
        cases.push(Case {
            label: format!("{}: truncated mid-string", codec.name()),
            codec,
            frame: frame[..at + 5].to_vec(),
            expect: "",
        });
    }

    for codec in codecs() {
        let frame = codec
            .encode_request(9, TraceContext::NONE, &call_request())
            .unwrap();
        let at = find(&frame, method);

        // A byte inside the string is not valid UTF-8 any more.
        let mut bad_utf8 = frame;
        bad_utf8[at] = 0xFF;
        cases.push(Case {
            label: format!("{}: invalid utf-8 in string", codec.name()),
            codec,
            frame: bad_utf8,
            expect: "",
        });
    }

    // The binary codecs carry explicit u32 length prefixes; a corrupt one
    // claiming a ~4 GiB string must fail fast against the actual buffer
    // size instead of allocating what the attacker asked for.
    for codec in [
        Box::new(RmiCodec::new()) as Box<dyn Protocol>,
        Box::new(CorbaCodec::new()),
    ] {
        let frame = codec
            .encode_request(9, TraceContext::NONE, &call_request())
            .unwrap();
        let at = find(&frame, method);
        let mut huge = frame;
        huge[at - 4..at].copy_from_slice(&u32::MAX.to_le_bytes());
        cases.push(Case {
            label: format!("{}: oversized string length prefix", codec.name()),
            codec,
            frame: huge,
            expect: "",
        });
    }

    // CDR padding that lands past the end of the buffer: the GIOP body
    // aligns the arg count to 4 after the (odd-length) method string, so a
    // frame cut right at the string's end forces the pad skip off the end.
    {
        let codec: Box<dyn Protocol> = Box::new(CorbaCodec::new());
        let frame = codec
            .encode_request(9, TraceContext::NONE, &call_request())
            .unwrap();
        let cut = find(&frame, method) + method.len();
        cases.push(Case {
            label: "CORBA: alignment pad past end of buffer".to_owned(),
            codec,
            frame: frame[..cut].to_vec(),
            expect: "",
        });
    }

    // A signature reference cannot be resolved without the table that saw
    // its defining frame: a stateless decoder must say so, not guess.
    for codec in codecs() {
        let mut table = SigTable::new();
        let mut first = Vec::new();
        let mut second = Vec::new();
        codec
            .encode_request_into(
                1,
                TraceContext::NONE,
                &call_request(),
                Some(&mut table),
                &mut first,
            )
            .unwrap();
        codec
            .encode_request_into(
                2,
                TraceContext::NONE,
                &call_request(),
                Some(&mut table),
                &mut second,
            )
            .unwrap();
        cases.push(Case {
            label: format!("{}: sigref without a table", codec.name()),
            codec,
            frame: second,
            expect: "sigref",
        });
    }

    for case in cases {
        let got = case.codec.decode_request(&case.frame);
        let err = match got {
            Err(e) => e.to_string(),
            Ok(_) => panic!("{}: decoded a corrupt frame", case.label),
        };
        assert!(
            err.contains(case.expect),
            "{}: error {err:?} does not mention {:?}",
            case.label,
            case.expect
        );
    }
}

/// Every untrusted `u32` length prefix in the RMI binary format, corrupted
/// to claim ~4 billion elements. Each must decode to a typed error after a
/// *clamped* preallocation — an unclamped `Vec::with_capacity` here would
/// attempt a multi-gigabyte allocation and abort the process, which is the
/// regression this table exists to catch. One row per decoder site:
/// array items, object-state fields, call args, create args, batched ops,
/// exception fields, and batched-reply ops.
#[test]
fn oversized_rmi_length_prefixes_are_clamped_at_every_site() {
    let codec = RmiCodec::new();
    let huge = u32::MAX.to_le_bytes();
    let method = b"averylongmethodname@9";

    // Request sites. Each entry: (label, frame, byte offset of the count).
    let mut request_cases: Vec<(String, Vec<u8>, usize)> = Vec::new();

    // Call arg count: follows the inline method string.
    let frame = codec
        .encode_request(9, TraceContext::NONE, &call_request())
        .unwrap();
    let at = find(&frame, method) + method.len();
    request_cases.push(("rmi: call arg count".into(), frame, at));

    // Create arg count: follows the class string and the u16 ctor index.
    let frame = codec
        .encode_request(
            9,
            TraceContext::NONE,
            &Request::Create {
                class: "WidgetClass".to_owned(),
                ctor: 1,
                args: vec![WireValue::Int(7)],
            },
        )
        .unwrap();
    let at = find(&frame, b"WidgetClass") + "WidgetClass".len() + 2;
    request_cases.push(("rmi: create arg count".into(), frame, at));

    // Array item count: first arg is an array — its count sits one tag
    // byte after the (method string, arg count) prefix.
    let frame = codec
        .encode_request(
            9,
            TraceContext::NONE,
            &Request::Call {
                object: 5,
                method: "averylongmethodname@9".to_owned(),
                args: vec![WireValue::Array(vec![WireValue::Int(77)])],
            },
        )
        .unwrap();
    let at = find(&frame, method) + method.len() + 4 + 1;
    request_cases.push(("rmi: array item count".into(), frame, at));

    // Object-state field count: follows the state's class string.
    let frame = codec
        .encode_request(
            9,
            TraceContext::NONE,
            &Request::Call {
                object: 5,
                method: "averylongmethodname@9".to_owned(),
                args: vec![WireValue::ObjectState {
                    class: "StateClass".to_owned(),
                    fields: vec![WireValue::Int(5)],
                }],
            },
        )
        .unwrap();
    let at = find(&frame, b"StateClass") + "StateClass".len();
    request_cases.push(("rmi: object-state field count".into(), frame, at));

    // Batch op count: sits before the first op — R_CALL tag (1) + object
    // id (8) + the method string's own length prefix (4).
    let frame = codec
        .encode_request(9, TraceContext::NONE, &Request::Batch(vec![call_request()]))
        .unwrap();
    let at = find(&frame, method) - 4 - 8 - 1 - 4;
    request_cases.push(("rmi: batch op count".into(), frame, at));

    for (label, mut frame, at) in request_cases {
        frame[at..at + 4].copy_from_slice(&huge);
        assert!(
            codec.decode_request(&frame).is_err(),
            "{label}: decoded a frame claiming u32::MAX elements"
        );
    }

    // Reply sites.
    let mut reply_cases: Vec<(String, Vec<u8>, usize)> = Vec::new();

    // Exception field count: follows the exception class string.
    let frame = codec
        .encode_reply(
            9,
            TraceContext::NONE,
            0,
            &Reply::Exception {
                class: "BoomError".to_owned(),
                fields: vec![WireValue::Int(1)],
            },
        )
        .unwrap();
    let at = find(&frame, b"BoomError") + "BoomError".len();
    reply_cases.push(("rmi: exception field count".into(), frame, at));

    // Batched-reply op count: sits before the first op's recognisable
    // 8-byte version stamp.
    let version = 0x0102_0304_0506_0708u64;
    let frame = codec
        .encode_reply(
            9,
            TraceContext::NONE,
            0,
            &Reply::Batch(vec![(version, Reply::Value(WireValue::Int(3)))]),
        )
        .unwrap();
    let at = find(&frame, &version.to_le_bytes()) - 4;
    reply_cases.push(("rmi: batched-reply op count".into(), frame, at));

    for (label, mut frame, at) in reply_cases {
        frame[at..at + 4].copy_from_slice(&huge);
        assert!(
            codec.decode_reply(&frame).is_err(),
            "{label}: decoded a frame claiming u32::MAX elements"
        );
    }
}

/// A reference to a signature id the table has never defined (the peer's
/// table drifted, e.g. after a reconnect) is a typed error on every codec.
#[test]
fn unknown_sigref_ids_are_rejected_on_every_codec() {
    for codec in codecs() {
        let mut encode_table = SigTable::new();
        let mut first = Vec::new();
        let mut second = Vec::new();
        codec
            .encode_request_into(
                1,
                TraceContext::NONE,
                &call_request(),
                Some(&mut encode_table),
                &mut first,
            )
            .unwrap();
        codec
            .encode_request_into(
                2,
                TraceContext::NONE,
                &call_request(),
                Some(&mut encode_table),
                &mut second,
            )
            .unwrap();

        // A *fresh* table never saw the defining frame, so every id in the
        // second frame is unknown to it.
        let mut fresh = SigTable::new();
        let header = codec.decode_request_header(&second).unwrap();
        let err = header
            .materialise(Some(&mut fresh))
            .expect_err(&format!("{}: resolved an undefined sigref", codec.name()));
        assert!(
            err.to_string().contains("sigref"),
            "{}: error {err:?} does not mention the sigref",
            codec.name()
        );
    }
}

/// The dedup fast path reads headers without materialising; a frame whose
/// header region itself is truncated must still error cleanly.
#[test]
fn truncated_headers_are_rejected_by_the_header_decoder() {
    for codec in codecs() {
        let frame = codec
            .encode_request(77, TraceContext::NONE, &call_request())
            .unwrap();
        for cut in [0, 1, 4, 8, 16, 24, 32] {
            if cut >= frame.len() {
                continue;
            }
            assert!(
                codec.decode_request_header(&frame[..cut]).is_err(),
                "{}: header decoder accepted a {cut}-byte stump",
                codec.name()
            );
        }
    }
}
