//! Per-connection interned signature/class-name table.
//!
//! Method descriptors (`name@sigid`) and class names recur on almost every
//! frame a link carries: the same proxy calls the same methods on the same
//! classes over and over. Instead of re-encoding those strings per frame,
//! each *directed* link negotiates a dictionary define-on-first-use: the
//! first frame that carries a signature sends it inline (and both ends
//! intern it under the next free id), every later frame sends a small
//! integer reference (RMI v8 / GIOP 1.8 marker byte, SOAP `rafda:sigref`
//! attribute). Because frames on a link are processed in order and
//! interning is idempotent, encoder and decoder assign identical ids
//! without any extra handshake traffic — a retransmitted define frame
//! re-interns to the same id.
//!
//! Only signature-position strings participate (`Call.method`,
//! `Create`/`Discover`/`Remote`/`ObjectState`/`Exception` class names);
//! payload [`crate::WireValue::Str`] values always travel inline.
//!
//! The table is bounded by [`SigTable::MAX_SIGS`]: once full, both sides
//! stop interning and fall back to inline strings, keeping encoder and
//! decoder views identical without eviction coordination.

use crate::WireError;
use std::collections::HashMap;

/// How the encoder should put a signature string on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigEnc {
    /// The string is already interned under this id — send the reference.
    Ref(u32),
    /// Send the string inline (first use, or the table is full).
    Inline,
}

/// A directed per-link signature dictionary (see module docs).
#[derive(Debug, Clone, Default)]
pub struct SigTable {
    ids: HashMap<String, u32>,
    names: Vec<String>,
    refs: u64,
    defs: u64,
}

impl SigTable {
    /// Entry cap. A full table degrades to inline strings on both sides.
    pub const MAX_SIGS: usize = 4096;

    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned signatures.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The id `s` is interned under, if any.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    /// Intern `s`, returning its id: the existing id if already present,
    /// the next free id otherwise, or `None` when the table is full (both
    /// ends then carry the string inline forever). Idempotent, so decoding
    /// a retransmitted define frame cannot skew the numbering.
    pub fn intern(&mut self, s: &str) -> Option<u32> {
        if let Some(id) = self.ids.get(s) {
            return Some(*id);
        }
        if self.names.len() >= Self::MAX_SIGS {
            return None;
        }
        let id = self.names.len() as u32;
        self.ids.insert(s.to_owned(), id);
        self.names.push(s.to_owned());
        Some(id)
    }

    /// Resolve a wire reference back to its string.
    ///
    /// # Errors
    /// [`WireError`] when `id` was never defined on this link.
    pub fn resolve(&self, id: u32) -> Result<&str, WireError> {
        self.names
            .get(id as usize)
            .map(String::as_str)
            .ok_or_else(|| WireError::new(format!("unknown sigref {id}")))
    }

    /// Decide how to encode `s`, interning on first use and counting the
    /// outcome (the counters feed the runtime's wire statistics).
    pub fn encode_sig(&mut self, s: &str) -> SigEnc {
        match self.lookup(s) {
            Some(id) => {
                self.refs += 1;
                SigEnc::Ref(id)
            }
            None => {
                if self.intern(s).is_some() {
                    self.defs += 1;
                }
                SigEnc::Inline
            }
        }
    }

    /// Encode-side reference hits (signatures sent as a small id).
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Encode-side defines (signatures interned and sent inline once).
    pub fn defs(&self) -> u64 {
        self.defs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_use_defines_then_refs() {
        let mut t = SigTable::new();
        assert_eq!(t.encode_sig("tick@0"), SigEnc::Inline);
        assert_eq!(t.encode_sig("tick@0"), SigEnc::Ref(0));
        assert_eq!(t.encode_sig("Counter"), SigEnc::Inline);
        assert_eq!(t.encode_sig("Counter"), SigEnc::Ref(1));
        assert_eq!((t.defs(), t.refs()), (2, 2));
        assert_eq!(t.resolve(1).unwrap(), "Counter");
        assert!(t.resolve(2).is_err());
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = SigTable::new();
        assert_eq!(t.intern("a"), Some(0));
        assert_eq!(t.intern("b"), Some(1));
        assert_eq!(t.intern("a"), Some(0), "re-interning keeps the id");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn full_table_degrades_to_inline() {
        let mut t = SigTable::new();
        for i in 0..SigTable::MAX_SIGS {
            assert!(t.intern(&format!("sig{i}")).is_some());
        }
        assert_eq!(t.intern("overflow"), None);
        assert_eq!(t.encode_sig("overflow"), SigEnc::Inline);
        assert_eq!(t.encode_sig("overflow"), SigEnc::Inline, "never interned");
        // Existing entries still resolve by reference.
        assert_eq!(t.encode_sig("sig0"), SigEnc::Ref(0));
    }
}
