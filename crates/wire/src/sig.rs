//! Per-connection interned signature/class-name table.
//!
//! Method descriptors (`name@sigid`) and class names recur on almost every
//! frame a link carries: the same proxy calls the same methods on the same
//! classes over and over. Instead of re-encoding those strings per frame,
//! each *directed* link negotiates a dictionary define-on-first-use: the
//! first frame that carries a signature sends it inline (and both ends
//! intern it under the next free id), every later frame sends a small
//! integer reference (RMI v8 / GIOP 1.8 marker byte, SOAP `rafda:sigref`
//! attribute). Because frames on a link are processed in order and
//! interning is idempotent, encoder and decoder assign identical ids
//! without any extra handshake traffic — a retransmitted define frame
//! re-interns to the same id.
//!
//! Only signature-position strings participate (`Call.method`,
//! `Create`/`Discover`/`Remote`/`ObjectState`/`Exception` class names);
//! payload [`crate::WireValue::Str`] values always travel inline.
//!
//! The table is bounded by [`SigTable::MAX_SIGS`]: once full, both sides
//! stop interning and fall back to inline strings, keeping encoder and
//! decoder views identical without eviction coordination.

use crate::WireError;
use std::collections::HashMap;

/// How the encoder should put a signature string on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigEnc {
    /// The string is already interned under this id — send the reference.
    Ref(u32),
    /// Send the string inline (first use, or the table is full).
    Inline,
}

/// The result of a [`SigTable::intern`] attempt — typed, so a full table
/// is an explicit, testable outcome instead of a silently skipped id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InternOutcome {
    /// The string is interned (or already was) under this id.
    Interned(u32),
    /// The table sits at exactly [`SigTable::MAX_SIGS`]: no id was minted
    /// and both ends carry this string inline forever.
    TableFull,
}

impl InternOutcome {
    /// The interned id, if one was (or already had been) assigned.
    pub fn id(self) -> Option<u32> {
        match self {
            InternOutcome::Interned(id) => Some(id),
            InternOutcome::TableFull => None,
        }
    }
}

/// A directed per-link signature dictionary (see module docs).
#[derive(Debug, Clone, Default)]
pub struct SigTable {
    ids: HashMap<String, u32>,
    names: Vec<String>,
    refs: u64,
    defs: u64,
}

impl SigTable {
    /// Entry cap. A full table degrades to inline strings on both sides.
    pub const MAX_SIGS: usize = 4096;

    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned signatures.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The id `s` is interned under, if any.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    /// Intern `s`: the existing id if already present, the next free id
    /// otherwise, or [`InternOutcome::TableFull`] at exactly
    /// [`SigTable::MAX_SIGS`] entries — allocation degrades to inline, it
    /// never mints an id past the cap. Idempotent, so decoding a
    /// retransmitted define frame cannot skew the numbering.
    pub fn intern(&mut self, s: &str) -> InternOutcome {
        if let Some(id) = self.ids.get(s) {
            return InternOutcome::Interned(*id);
        }
        if self.names.len() >= Self::MAX_SIGS {
            return InternOutcome::TableFull;
        }
        let id = self.names.len() as u32;
        self.ids.insert(s.to_owned(), id);
        self.names.push(s.to_owned());
        InternOutcome::Interned(id)
    }

    /// Resolve a wire reference back to its string.
    ///
    /// # Errors
    /// [`WireError`] when `id` was never defined on this link.
    pub fn resolve(&self, id: u32) -> Result<&str, WireError> {
        self.names
            .get(id as usize)
            .map(String::as_str)
            .ok_or_else(|| WireError::new(format!("unknown sigref {id}")))
    }

    /// Decide how to encode `s`, interning on first use and counting the
    /// outcome (the counters feed the runtime's wire statistics).
    pub fn encode_sig(&mut self, s: &str) -> SigEnc {
        match self.lookup(s) {
            Some(id) => {
                self.refs += 1;
                SigEnc::Ref(id)
            }
            None => {
                if let InternOutcome::Interned(_) = self.intern(s) {
                    self.defs += 1;
                }
                SigEnc::Inline
            }
        }
    }

    /// Encode-side reference hits (signatures sent as a small id).
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Encode-side defines (signatures interned and sent inline once).
    pub fn defs(&self) -> u64 {
        self.defs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_use_defines_then_refs() {
        let mut t = SigTable::new();
        assert_eq!(t.encode_sig("tick@0"), SigEnc::Inline);
        assert_eq!(t.encode_sig("tick@0"), SigEnc::Ref(0));
        assert_eq!(t.encode_sig("Counter"), SigEnc::Inline);
        assert_eq!(t.encode_sig("Counter"), SigEnc::Ref(1));
        assert_eq!((t.defs(), t.refs()), (2, 2));
        assert_eq!(t.resolve(1).unwrap(), "Counter");
        assert!(t.resolve(2).is_err());
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = SigTable::new();
        assert_eq!(t.intern("a"), InternOutcome::Interned(0));
        assert_eq!(t.intern("b"), InternOutcome::Interned(1));
        assert_eq!(
            t.intern("a"),
            InternOutcome::Interned(0),
            "re-interning keeps the id"
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn full_table_degrades_to_inline() {
        let mut t = SigTable::new();
        for i in 0..SigTable::MAX_SIGS {
            assert!(t.intern(&format!("sig{i}")).id().is_some());
        }
        assert_eq!(t.intern("overflow"), InternOutcome::TableFull);
        assert_eq!(t.encode_sig("overflow"), SigEnc::Inline);
        assert_eq!(t.encode_sig("overflow"), SigEnc::Inline, "never interned");
        // Existing entries still resolve by reference.
        assert_eq!(t.encode_sig("sig0"), SigEnc::Ref(0));
    }

    #[test]
    fn intern_boundary_at_exact_cap() {
        let cap = SigTable::MAX_SIGS;
        let mut t = SigTable::new();
        for i in 0..cap - 1 {
            assert_eq!(
                t.intern(&format!("sig{i}")),
                InternOutcome::Interned(i as u32)
            );
        }
        // cap−1 entries: the last free slot still mints an id.
        assert_eq!(t.intern("last"), InternOutcome::Interned(cap as u32 - 1));
        assert_eq!(t.len(), cap);
        // cap: exactly full — allocation degrades, no id past the cap.
        assert_eq!(t.intern("at-cap"), InternOutcome::TableFull);
        assert_eq!(t.len(), cap);
        // cap+1: still full; existing entries keep their ids, and no id
        // beyond the cap ever resolves.
        assert_eq!(t.intern("past-cap"), InternOutcome::TableFull);
        assert_eq!(t.intern("last"), InternOutcome::Interned(cap as u32 - 1));
        assert!(t.resolve(cap as u32).is_err());
    }
}
