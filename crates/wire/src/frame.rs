//! Borrowed frame headers with lazy payload materialisation.
//!
//! The serve path often does not need the request body at all: an
//! at-most-once dedup hit is answered from the reply cache, batch frames
//! are routed by discriminant, and replica-sync fan-out only inspects the
//! header. [`FrameHeader`] is the zero-copy view that makes those
//! decisions cheap — it borrows the wire bytes, exposes the message id,
//! trace context and request discriminant, and defers building the owned
//! [`Request`] tree to [`FrameHeader::materialise`], which is only called
//! when the request is actually invoked.

use crate::sig::SigTable;
use crate::{rmi, soap, Request, TraceContext, WireError};

/// The discriminant of a [`Request`], decodable from a frame header alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// [`Request::Call`]
    Call,
    /// [`Request::Create`]
    Create,
    /// [`Request::Discover`]
    Discover,
    /// [`Request::Fetch`]
    Fetch,
    /// [`Request::Install`]
    Install,
    /// [`Request::Forward`]
    Forward,
    /// [`Request::ReplicaSync`]
    ReplicaSync,
    /// [`Request::Promote`]
    Promote,
    /// [`Request::Batch`]
    Batch,
}

impl RequestKind {
    /// The discriminant of an owned request.
    pub fn of(req: &Request) -> RequestKind {
        match req {
            Request::Call { .. } => RequestKind::Call,
            Request::Create { .. } => RequestKind::Create,
            Request::Discover { .. } => RequestKind::Discover,
            Request::Fetch { .. } => RequestKind::Fetch,
            Request::Install { .. } => RequestKind::Install,
            Request::Forward { .. } => RequestKind::Forward,
            Request::ReplicaSync { .. } => RequestKind::ReplicaSync,
            Request::Promote { .. } => RequestKind::Promote,
            Request::Batch(_) => RequestKind::Batch,
        }
    }

    /// A short lowercase label (matches the runtime's span vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            RequestKind::Call => "call",
            RequestKind::Create => "create",
            RequestKind::Discover => "discover",
            RequestKind::Fetch => "fetch",
            RequestKind::Install => "install",
            RequestKind::Forward => "forward",
            RequestKind::ReplicaSync => "replicasync",
            RequestKind::Promote => "promote",
            RequestKind::Batch => "batch",
        }
    }
}

/// Where a header's payload bytes live and how to parse them on demand.
#[derive(Debug, Clone)]
pub(crate) enum Payload<'a> {
    /// A tagged-binary body (RMI or GIOP). `pos` is the byte offset of the
    /// request tag; alignment stays relative to the buffer start, which is
    /// why the full frame is kept rather than a body sub-slice. `sigged`
    /// frames (RMI v8 / GIOP 1.8) carry signature markers.
    Binary {
        /// The whole frame.
        buf: &'a [u8],
        /// Offset of the request tag byte.
        pos: usize,
        /// CDR alignment (GIOP) vs packed (RMI).
        aligned: bool,
        /// Whether signature-position strings carry interning markers.
        sigged: bool,
    },
    /// The content of `<soap:Body>`, left as unparsed XML text.
    Xml {
        /// The body slice of the envelope.
        body: &'a str,
    },
}

/// A request frame header parsed without building the owned body.
///
/// Borrowed from the frame bytes; see the module docs for why. Obtain one
/// from [`crate::Protocol::decode_request_header`].
#[derive(Debug, Clone)]
pub struct FrameHeader<'a> {
    /// Caller-assigned message id (the at-most-once dedup key).
    pub msg_id: u64,
    /// The sending span's trace context.
    pub ctx: TraceContext,
    /// The request discriminant, for routing and span naming.
    pub kind: RequestKind,
    pub(crate) payload: Payload<'a>,
}

impl FrameHeader<'_> {
    /// Build the owned [`Request`] from the deferred payload bytes.
    ///
    /// `sigs` is the link's signature table: inline signatures are interned
    /// into it and references resolved from it. Passing `None` still
    /// decodes any frame whose signatures are all inline (every pre-sigref
    /// frame), but a frame carrying references needs the table that saw
    /// their defining frames.
    ///
    /// # Errors
    /// [`WireError`] on malformed payload bytes or an unresolvable
    /// signature reference.
    pub fn materialise(&self, mut sigs: Option<&mut SigTable>) -> Result<Request, WireError> {
        match &self.payload {
            Payload::Binary {
                buf,
                pos,
                aligned,
                sigged,
            } => rmi::materialise_binary(buf, *pos, *aligned, *sigged, &mut sigs),
            Payload::Xml { body } => soap::materialise_body(body, &mut sigs),
        }
    }
}
