//! CORBA-like codec: GIOP-style header and CDR-style aligned binary.
//!
//! Reuses the tag layout of the RMI codec but with natural alignment of
//! multi-byte primitives (relative to message start), which makes messages
//! somewhat larger — the classic CDR trade-off of parse speed for padding.

use crate::binary::{BinReader, BinWriter};
use crate::{rmi, Protocol, Reply, Request, WireError};

const MAGIC: &[u8] = b"GIOP";
// Minor version 3 added the message id (at-most-once dedup key): an aligned
// u64 occupying bytes 8..16 of every frame (bytes 6..8 are alignment pad).
const VERSION: &[u8] = &[1, 3];

/// The CORBA-like protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct CorbaCodec;

impl CorbaCodec {
    /// Create the codec.
    pub fn new() -> Self {
        CorbaCodec
    }
}

impl Protocol for CorbaCodec {
    fn name(&self) -> &'static str {
        "CORBA"
    }

    fn encode_request(&self, id: u64, req: &Request) -> Vec<u8> {
        let mut w = BinWriter::aligned();
        w.raw(MAGIC).raw(VERSION).u64(id);
        rmi::write_request(&mut w, req);
        w.finish()
    }

    fn decode_request(&self, bytes: &[u8]) -> Result<(u64, Request), WireError> {
        let mut r = BinReader::aligned(bytes);
        r.expect(MAGIC)?;
        r.expect(VERSION)?;
        let id = r.u64()?;
        Ok((id, rmi::read_request(&mut r)?))
    }

    fn encode_reply(&self, id: u64, reply: &Reply) -> Vec<u8> {
        let mut w = BinWriter::aligned();
        w.raw(MAGIC).raw(VERSION).u64(id);
        rmi::write_reply(&mut w, reply);
        w.finish()
    }

    fn decode_reply(&self, bytes: &[u8]) -> Result<(u64, Reply), WireError> {
        let mut r = BinReader::aligned(bytes);
        r.expect(MAGIC)?;
        r.expect(VERSION)?;
        let id = r.u64()?;
        Ok((id, rmi::read_reply(&mut r)?))
    }

    /// ORB request brokering cost: ~60 µs per message.
    fn overhead_ns(&self) -> u64 {
        60_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata;
    use crate::WireValue;

    #[test]
    fn roundtrips_all_samples() {
        testdata::assert_roundtrips(&CorbaCodec::new());
    }

    #[test]
    fn alignment_makes_corba_at_least_as_large_as_rmi() {
        let rmi = crate::RmiCodec::new();
        let corba = CorbaCodec::new();
        for req in testdata::sample_requests() {
            let r = rmi.encode_request(9, &req).len();
            let c = corba.encode_request(9, &req).len();
            assert!(c >= r, "corba {c} < rmi {r} for {req:?}");
        }
    }

    #[test]
    fn rejects_rmi_frames() {
        let frame = crate::RmiCodec::new().encode_reply(3, &Reply::Value(WireValue::Int(1)));
        assert!(CorbaCodec::new().decode_reply(&frame).is_err());
    }

    #[test]
    fn message_id_sits_at_aligned_offset() {
        let bytes = CorbaCodec::new().encode_request(0x1122_3344_5566_7788, &Request::Fetch { object: 1 });
        // 4 magic + 2 version + 2 pad, then the aligned u64 id.
        let id = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        assert_eq!(id, 0x1122_3344_5566_7788);
    }
}
