//! CORBA-like codec: GIOP-style header and CDR-style aligned binary.
//!
//! Reuses the tag layout of the RMI codec but with natural alignment of
//! multi-byte primitives (relative to message start), which makes messages
//! somewhat larger — the classic CDR trade-off of parse speed for padding.
//!
//! The body readers are shared with the RMI codec, so the untrusted-length
//! preallocation caps (`rmi::MAX_PREALLOC_*`) bound GIOP decoding too.

use crate::binary::{BinReader, BinWriter};
use crate::frame::FrameHeader;
use crate::sig::SigTable;
use crate::{rmi, Protocol, Reply, Request, TraceContext, WireError};

const MAGIC: &[u8] = b"GIOP";
// Minor version 3 added the message id (at-most-once dedup key): an aligned
// u64 occupying bytes 8..16 of every frame (bytes 6..8 are alignment pad).
// Minor version 4 appended the trace context: three aligned u64s (trace,
// span, parent span ids) at bytes 16..40. Minor-3 frames still decode, with
// `TraceContext::NONE`.
// Minor version 5 appended the served object's property version to *reply*
// frames: an aligned u64 at bytes 40..48 (requests are unchanged). Minor-4
// replies decode with version 0.
// Minor version 6 added the replica-sync and promote request bodies
// (crash-stop failover); the header layout is unchanged, so minor-5 frames
// still decode as before.
// Minor version 7 added the batch request/reply bodies (batched remote
// invocation); again the header layout is unchanged, so minor-6 frames
// still decode as before.
// Minor version 8 adds signature interning (marker-prefixed signature
// strings resolved against the link's `SigTable`), emitted only when a
// table is supplied; the stateless encode path still emits minor-7 bytes,
// and minor-7 frames still decode as before.
const MAJOR: u8 = 1;
const MINOR: u8 = 7;
const MINOR_SIG: u8 = 8;

/// The CORBA-like protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct CorbaCodec;

impl CorbaCodec {
    /// Create the codec.
    pub fn new() -> Self {
        CorbaCodec
    }
}

impl Protocol for CorbaCodec {
    fn name(&self) -> &'static str {
        "CORBA"
    }

    fn encode_request_into(
        &self,
        id: u64,
        ctx: TraceContext,
        req: &Request,
        mut sigs: Option<&mut SigTable>,
        out: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        let mut w = BinWriter::reuse_aligned(std::mem::take(out));
        let minor = if sigs.is_some() { MINOR_SIG } else { MINOR };
        w.raw(MAGIC).raw(&[MAJOR, minor]).u64(id);
        rmi::write_ctx(&mut w, ctx);
        rmi::write_request(&mut w, req, &mut sigs);
        *out = w.finish()?;
        Ok(())
    }

    fn decode_request_header<'a>(&self, bytes: &'a [u8]) -> Result<FrameHeader<'a>, WireError> {
        let mut r = BinReader::aligned(bytes);
        r.expect(MAGIC)?;
        r.expect(&[MAJOR])?;
        let minor = r.u8()?;
        let id = r.u64()?;
        let ctx = if minor >= 4 {
            rmi::read_ctx(&mut r)?
        } else {
            TraceContext::NONE
        };
        rmi::binary_header(bytes, &mut r, id, ctx, true, minor >= 8)
    }

    fn encode_reply_into(
        &self,
        id: u64,
        ctx: TraceContext,
        obj_version: u64,
        reply: &Reply,
        mut sigs: Option<&mut SigTable>,
        out: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        let mut w = BinWriter::reuse_aligned(std::mem::take(out));
        let minor = if sigs.is_some() { MINOR_SIG } else { MINOR };
        w.raw(MAGIC).raw(&[MAJOR, minor]).u64(id);
        rmi::write_ctx(&mut w, ctx);
        w.u64(obj_version);
        rmi::write_reply(&mut w, reply, &mut sigs);
        *out = w.finish()?;
        Ok(())
    }

    fn decode_reply_with(
        &self,
        bytes: &[u8],
        mut sigs: Option<&mut SigTable>,
    ) -> Result<(u64, TraceContext, u64, Reply), WireError> {
        let mut r = BinReader::aligned(bytes);
        r.expect(MAGIC)?;
        r.expect(&[MAJOR])?;
        let minor = r.u8()?;
        let id = r.u64()?;
        let ctx = if minor >= 4 {
            rmi::read_ctx(&mut r)?
        } else {
            TraceContext::NONE
        };
        let obj_version = if minor >= 5 { r.u64()? } else { 0 };
        let reply = rmi::read_reply(&mut r, minor >= 8, &mut sigs)?;
        Ok((id, ctx, obj_version, reply))
    }

    /// ORB request brokering cost: ~60 µs per message.
    fn overhead_ns(&self) -> u64 {
        60_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::RequestKind;
    use crate::testdata;
    use crate::WireValue;

    #[test]
    fn roundtrips_all_samples() {
        testdata::assert_roundtrips(&CorbaCodec::new());
    }

    #[test]
    fn alignment_makes_corba_at_least_as_large_as_rmi() {
        let rmi = crate::RmiCodec::new();
        let corba = CorbaCodec::new();
        for req in testdata::sample_requests() {
            let r = rmi
                .encode_request(9, TraceContext::NONE, &req)
                .unwrap()
                .len();
            let c = corba
                .encode_request(9, TraceContext::NONE, &req)
                .unwrap()
                .len();
            assert!(c >= r, "corba {c} < rmi {r} for {req:?}");
        }
    }

    #[test]
    fn rejects_rmi_frames() {
        let frame = crate::RmiCodec::new()
            .encode_reply(3, TraceContext::NONE, 0, &Reply::Value(WireValue::Int(1)))
            .unwrap();
        assert!(CorbaCodec::new().decode_reply(&frame).is_err());
    }

    #[test]
    fn header_fields_sit_at_aligned_offsets() {
        let ctx = TraceContext {
            trace_id: 0xAA,
            span_id: 0xBB,
            parent_span_id: 0xCC,
        };
        let bytes = CorbaCodec::new()
            .encode_request(0x1122_3344_5566_7788, ctx, &Request::Fetch { object: 1 })
            .unwrap();
        // 4 magic + 2 version + 2 pad, then the aligned u64 id, then the
        // three aligned u64s of the trace context.
        let id = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        assert_eq!(id, 0x1122_3344_5566_7788);
        assert_eq!(u64::from_le_bytes(bytes[16..24].try_into().unwrap()), 0xAA);
        assert_eq!(u64::from_le_bytes(bytes[24..32].try_into().unwrap()), 0xBB);
        assert_eq!(u64::from_le_bytes(bytes[32..40].try_into().unwrap()), 0xCC);
    }

    #[test]
    fn minor_3_frames_decode_with_no_trace_context() {
        let ctx = TraceContext {
            trace_id: 5,
            span_id: 6,
            parent_span_id: 1,
        };
        let v6 = CorbaCodec::new()
            .encode_request(9, ctx, &Request::Fetch { object: 2 })
            .unwrap();
        // Re-create the pre-tracing frame: minor version 3, no trace context
        // words (drop bytes 16..40); everything after stays aligned because
        // 24 bytes is a multiple of 8.
        let mut v3 = v6.clone();
        v3[5] = 3;
        v3.drain(16..40);
        let (id, back_ctx, req) = CorbaCodec::new().decode_request(&v3).unwrap();
        assert_eq!(id, 9);
        assert_eq!(back_ctx, TraceContext::NONE);
        assert_eq!(req, Request::Fetch { object: 2 });
    }

    #[test]
    fn minor_5_frames_decode_unchanged() {
        // Minor 6 only added request bodies; the header layout is identical,
        // so a minor-5 frame is a minor-6 frame with a different version
        // byte. Pre-failover peers must keep parsing.
        let ctx = TraceContext {
            trace_id: 8,
            span_id: 2,
            parent_span_id: 1,
        };
        let codec = CorbaCodec::new();
        let mut req5 = codec
            .encode_request(11, ctx, &Request::Fetch { object: 2 })
            .unwrap();
        req5[5] = 5;
        let (id, back_ctx, req) = codec.decode_request(&req5).unwrap();
        assert_eq!((id, back_ctx), (11, ctx));
        assert_eq!(req, Request::Fetch { object: 2 });
        let mut rep5 = codec
            .encode_reply(11, ctx, 31, &Reply::Value(WireValue::Long(-8)))
            .unwrap();
        rep5[5] = 5;
        let (id, back_ctx, ver, reply) = codec.decode_reply(&rep5).unwrap();
        assert_eq!((id, back_ctx, ver), (11, ctx, 31));
        assert_eq!(reply, Reply::Value(WireValue::Long(-8)));
    }

    #[test]
    fn minor_6_frames_decode_unchanged() {
        // Minor 7 only added the batch bodies; the header layout is
        // identical, so a minor-6 frame is a minor-7 frame with a different
        // version byte. Pre-batching peers must keep parsing.
        let ctx = TraceContext {
            trace_id: 3,
            span_id: 4,
            parent_span_id: 2,
        };
        let codec = CorbaCodec::new();
        let mut req6 = codec
            .encode_request(17, ctx, &Request::Promote { node: 1, object: 5 })
            .unwrap();
        req6[5] = 6;
        let (id, back_ctx, req) = codec.decode_request(&req6).unwrap();
        assert_eq!((id, back_ctx), (17, ctx));
        assert_eq!(req, Request::Promote { node: 1, object: 5 });
        let mut rep6 = codec
            .encode_reply(17, ctx, 3, &Reply::Value(WireValue::Int(6)))
            .unwrap();
        rep6[5] = 6;
        let (id, back_ctx, ver, reply) = codec.decode_reply(&rep6).unwrap();
        assert_eq!((id, back_ctx, ver), (17, ctx, 3));
        assert_eq!(reply, Reply::Value(WireValue::Int(6)));
    }

    #[test]
    fn minor_7_frames_decode_unchanged() {
        // Minor 8 only changed how signature strings are written, and only
        // when a table is negotiated; stateless encode stays at minor 7 and
        // those frames keep decoding with or without a decode-side table.
        let codec = CorbaCodec::new();
        let req = Request::Discover {
            class: "Stock".into(),
        };
        let bytes = codec.encode_request(3, TraceContext::NONE, &req).unwrap();
        assert_eq!(bytes[5], 7, "stateless encode stays at minor 7");
        let mut table = SigTable::new();
        let header = codec.decode_request_header(&bytes).unwrap();
        assert_eq!(header.materialise(Some(&mut table)).unwrap(), req);
        assert!(table.is_empty(), "minor-7 frames never intern");
    }

    #[test]
    fn sigged_frames_roundtrip_aligned() {
        let codec = CorbaCodec::new();
        let req = Request::Create {
            class: "StockMarket".into(),
            ctor: 1,
            args: vec![WireValue::ObjectState {
                class: "Quote_O_Local".into(),
                fields: vec![WireValue::Int(5)],
            }],
        };
        let mut enc = SigTable::new();
        let mut dec = SigTable::new();
        let mut first = Vec::new();
        codec
            .encode_request_into(1, TraceContext::NONE, &req, Some(&mut enc), &mut first)
            .unwrap();
        assert_eq!(first[5], 8, "sigged frames are minor 8");
        let h = codec.decode_request_header(&first).unwrap();
        assert_eq!(h.kind, RequestKind::Create);
        assert_eq!(h.materialise(Some(&mut dec)).unwrap(), req);
        let mut second = Vec::new();
        codec
            .encode_request_into(2, TraceContext::NONE, &req, Some(&mut enc), &mut second)
            .unwrap();
        assert!(second.len() < first.len());
        let h2 = codec.decode_request_header(&second).unwrap();
        assert_eq!(h2.materialise(Some(&mut dec)).unwrap(), req);
    }

    #[test]
    fn minor_4_replies_decode_with_object_version_zero() {
        let ctx = TraceContext {
            trace_id: 5,
            span_id: 6,
            parent_span_id: 1,
        };
        let v6 = CorbaCodec::new()
            .encode_reply(9, ctx, 31, &Reply::Value(WireValue::Long(-8)))
            .unwrap();
        // Re-create the pre-caching frame: minor version 4, no object
        // version word (drop bytes 40..48); the body stays aligned because
        // 8 bytes is a multiple of 8.
        let mut v4 = v6.clone();
        v4[5] = 4;
        v4.drain(40..48);
        let (id, back_ctx, ver, reply) = CorbaCodec::new().decode_reply(&v4).unwrap();
        assert_eq!(id, 9);
        assert_eq!(back_ctx, ctx);
        assert_eq!(ver, 0, "pre-caching peers imply version 0");
        assert_eq!(reply, Reply::Value(WireValue::Long(-8)));
    }
}
