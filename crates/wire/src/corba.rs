//! CORBA-like codec: GIOP-style header and CDR-style aligned binary.
//!
//! Reuses the tag layout of the RMI codec but with natural alignment of
//! multi-byte primitives (relative to message start), which makes messages
//! somewhat larger — the classic CDR trade-off of parse speed for padding.

use crate::binary::{BinReader, BinWriter};
use crate::{rmi, Protocol, Reply, Request, WireError};

const MAGIC: &[u8] = b"GIOP";
const VERSION: &[u8] = &[1, 2];

/// The CORBA-like protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct CorbaCodec;

impl CorbaCodec {
    /// Create the codec.
    pub fn new() -> Self {
        CorbaCodec
    }
}

impl Protocol for CorbaCodec {
    fn name(&self) -> &'static str {
        "CORBA"
    }

    fn encode_request(&self, req: &Request) -> Vec<u8> {
        let mut w = BinWriter::aligned();
        w.raw(MAGIC).raw(VERSION);
        rmi::write_request(&mut w, req);
        w.finish()
    }

    fn decode_request(&self, bytes: &[u8]) -> Result<Request, WireError> {
        let mut r = BinReader::aligned(bytes);
        r.expect(MAGIC)?;
        r.expect(VERSION)?;
        rmi::read_request(&mut r)
    }

    fn encode_reply(&self, reply: &Reply) -> Vec<u8> {
        let mut w = BinWriter::aligned();
        w.raw(MAGIC).raw(VERSION);
        rmi::write_reply(&mut w, reply);
        w.finish()
    }

    fn decode_reply(&self, bytes: &[u8]) -> Result<Reply, WireError> {
        let mut r = BinReader::aligned(bytes);
        r.expect(MAGIC)?;
        r.expect(VERSION)?;
        rmi::read_reply(&mut r)
    }

    /// ORB request brokering cost: ~60 µs per message.
    fn overhead_ns(&self) -> u64 {
        60_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata;
    use crate::WireValue;

    #[test]
    fn roundtrips_all_samples() {
        testdata::assert_roundtrips(&CorbaCodec::new());
    }

    #[test]
    fn alignment_makes_corba_at_least_as_large_as_rmi() {
        let rmi = crate::RmiCodec::new();
        let corba = CorbaCodec::new();
        for req in testdata::sample_requests() {
            let r = rmi.encode_request(&req).len();
            let c = corba.encode_request(&req).len();
            assert!(c >= r, "corba {c} < rmi {r} for {req:?}");
        }
    }

    #[test]
    fn rejects_rmi_frames() {
        let frame = crate::RmiCodec::new().encode_reply(&Reply::Value(WireValue::Int(1)));
        assert!(CorbaCodec::new().decode_reply(&frame).is_err());
    }
}
