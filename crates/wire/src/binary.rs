//! Shared binary reader/writer with optional CDR-style alignment.

use crate::WireError;

/// A little-endian byte writer. When `align` is true, multi-byte primitives
/// are aligned to their natural boundary relative to the start of the
/// buffer, as in CORBA CDR.
///
/// Encoding is infallible byte-pushing except for one class of error:
/// u32 length prefixes whose value does not fit in a `u32` (a >4 GiB
/// string or element count). Such a write *poisons* the writer instead of
/// silently truncating the length on the wire; [`BinWriter::finish`]
/// surfaces the poison as a typed [`WireError`], so a corrupt frame is
/// never produced.
#[derive(Debug)]
pub struct BinWriter {
    buf: Vec<u8>,
    align: bool,
    poisoned: Option<WireError>,
}

impl BinWriter {
    /// Unaligned (RMI-style) writer.
    pub fn new() -> Self {
        Self::reuse(Vec::with_capacity(64))
    }

    /// CDR-aligned writer.
    pub fn aligned() -> Self {
        Self::reuse_aligned(Vec::with_capacity(64))
    }

    /// Unaligned writer over a recycled buffer (cleared, capacity kept).
    /// This is the per-link buffer-pool entry point: the backing allocation
    /// of a previous frame is reused instead of dropped.
    pub fn reuse(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BinWriter {
            buf,
            align: false,
            poisoned: None,
        }
    }

    /// CDR-aligned writer over a recycled buffer (cleared, capacity kept).
    pub fn reuse_aligned(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BinWriter {
            buf,
            align: true,
            poisoned: None,
        }
    }

    fn pad_to(&mut self, n: usize) {
        if self.align {
            while !self.buf.len().is_multiple_of(n) {
                self.buf.push(0);
            }
        }
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Write a little-endian `u16` (aligned in CDR mode).
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.pad_to(2);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a little-endian `u32` (aligned in CDR mode).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.pad_to(4);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a little-endian `u64` (aligned in CDR mode).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.pad_to(8);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a little-endian `i32`.
    pub fn i32(&mut self, v: i32) -> &mut Self {
        self.u32(v as u32)
    }

    /// Write a little-endian `i64`.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.u64(v as u64)
    }

    /// Write an `f32` as its IEEE-754 bits.
    pub fn f32(&mut self, v: f32) -> &mut Self {
        self.u32(v.to_bits())
    }

    /// Write an `f64` as its IEEE-754 bits.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Write a `usize` as a u32 length prefix, checking the value fits.
    /// An oversized length (a >4 GiB string or element count) poisons the
    /// writer rather than truncating via `as u32` and emitting a frame whose
    /// prefix disagrees with its body.
    pub fn len_u32(&mut self, n: usize) -> &mut Self {
        match u32::try_from(n) {
            Ok(v) => self.u32(v),
            Err(_) => {
                if self.poisoned.is_none() {
                    self.poisoned = Some(WireError::new(format!(
                        "length {n} does not fit in a u32 prefix"
                    )));
                }
                self
            }
        }
    }

    /// Length-prefixed UTF-8 string (u32 length).
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.len_u32(s.len());
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Raw bytes, no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Finish and take the buffer, surfacing any length-prefix poison.
    pub fn finish(self) -> Result<Vec<u8>, WireError> {
        match self.poisoned {
            None => Ok(self.buf),
            Some(e) => Err(e),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Default for BinWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// The matching reader.
#[derive(Debug)]
pub struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
    align: bool,
}

impl<'a> BinReader<'a> {
    /// Unaligned reader.
    pub fn new(buf: &'a [u8]) -> Self {
        BinReader {
            buf,
            pos: 0,
            align: false,
        }
    }

    /// CDR-aligned reader.
    pub fn aligned(buf: &'a [u8]) -> Self {
        BinReader {
            buf,
            pos: 0,
            align: true,
        }
    }

    /// Resume reading `buf` at byte offset `pos`, in the given alignment
    /// mode. Used by the lazy-payload path: a header scan records where the
    /// payload starts and materialisation picks up from there. Alignment
    /// stays relative to the buffer start (CDR semantics), which is why the
    /// full buffer is kept rather than a payload sub-slice.
    pub fn resume(buf: &'a [u8], pos: usize, align: bool) -> Self {
        BinReader { buf, pos, align }
    }

    /// Current byte offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn skip_pad(&mut self, n: usize) {
        if self.align {
            while !self.pos.is_multiple_of(n) {
                self.pos += 1;
            }
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::new(format!(
                "truncated: need {n} bytes at {}",
                self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16` (skipping CDR padding).
    pub fn u16(&mut self) -> Result<u16, WireError> {
        self.skip_pad(2);
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32` (skipping CDR padding).
    pub fn u32(&mut self) -> Result<u32, WireError> {
        self.skip_pad(4);
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64` (skipping CDR padding).
    pub fn u64(&mut self) -> Result<u64, WireError> {
        self.skip_pad(8);
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(self.u32()? as i32)
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// Read an `f32` from its IEEE-754 bits.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Read an `f64` from its IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a u32-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::new("invalid utf-8"))
    }

    /// Expect exact magic bytes.
    pub fn expect(&mut self, magic: &[u8]) -> Result<(), WireError> {
        let got = self.take(magic.len())?;
        if got != magic {
            return Err(WireError::new(format!(
                "bad magic: expected {magic:?}, got {got:?}"
            )));
        }
        Ok(())
    }

    /// Whether all input was consumed (ignoring trailing alignment pad).
    /// The bounds check must come first: `skip_pad` can legally advance
    /// `pos` past the end of the buffer when a frame ends mid-pad, and
    /// slicing `buf[self.pos..]` with such a `pos` would panic.
    pub fn at_end(&self) -> bool {
        self.pos >= self.buf.len() || self.buf[self.pos..].iter().all(|&b| b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unaligned_roundtrip() {
        let mut w = BinWriter::new();
        w.u8(7).u16(300).u32(70_000).u64(1 << 40).i32(-5).i64(-6);
        w.f32(1.5).f64(-2.25).string("héllo");
        let buf = w.finish().unwrap();
        let mut r = BinReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i32().unwrap(), -5);
        assert_eq!(r.i64().unwrap(), -6);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.f64().unwrap(), -2.25);
        assert_eq!(r.string().unwrap(), "héllo");
        assert!(r.at_end());
    }

    #[test]
    fn aligned_writer_pads_and_reader_skips() {
        let mut w = BinWriter::aligned();
        w.u8(1).u32(2).u8(3).u64(4);
        let buf = w.finish().unwrap();
        // u8 at 0, pad to 4, u32 at 4..8, u8 at 8, pad to 16, u64 at 16..24
        assert_eq!(buf.len(), 24);
        let mut r = BinReader::aligned(&buf);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u32().unwrap(), 2);
        assert_eq!(r.u8().unwrap(), 3);
        assert_eq!(r.u64().unwrap(), 4);
    }

    #[test]
    fn truncated_input_errors() {
        let buf = vec![1, 2];
        let mut r = BinReader::new(&buf);
        assert!(r.u64().is_err());
    }

    #[test]
    fn bad_magic_detected() {
        let buf = b"GIOP".to_vec();
        let mut r = BinReader::new(&buf);
        assert!(r.expect(b"JRMI").is_err());
        let mut r2 = BinReader::new(&buf);
        assert!(r2.expect(b"GIOP").is_ok());
    }

    #[test]
    fn oversized_length_prefix_poisons_writer() {
        if usize::BITS <= 32 {
            return; // the overflow cannot be constructed on 32-bit targets
        }
        let mut w = BinWriter::new();
        w.u8(1).len_u32((u32::MAX as usize) + 1).u8(2);
        let err = w.finish().unwrap_err();
        assert!(err.0.contains("does not fit"), "unexpected error: {err:?}");

        // An in-range length never poisons.
        let mut ok = BinWriter::new();
        ok.len_u32(u32::MAX as usize);
        assert!(ok.finish().is_ok());
    }

    #[test]
    fn at_end_tolerates_pad_past_buffer_end() {
        // A CDR frame that ends mid-pad: u8 at 0, then the reader skips pad
        // for a u32 that never comes. `skip_pad` advances pos to 4 on a
        // 2-byte buffer; at_end must report true, not panic.
        let buf = vec![7, 0];
        let mut r = BinReader::aligned(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.u32().is_err());
        assert!(r.at_end());
    }

    #[test]
    fn reused_buffer_is_cleared_but_keeps_capacity() {
        let mut w = BinWriter::new();
        w.string("first frame with some length");
        let buf = w.finish().unwrap();
        let cap = buf.capacity();
        let mut w2 = BinWriter::reuse(buf);
        w2.u8(9);
        let buf2 = w2.finish().unwrap();
        assert_eq!(buf2, vec![9]);
        assert!(buf2.capacity() >= cap.min(1));
    }
}
