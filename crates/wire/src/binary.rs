//! Shared binary reader/writer with optional CDR-style alignment.

use crate::WireError;

/// A little-endian byte writer. When `align` is true, multi-byte primitives
/// are aligned to their natural boundary relative to the start of the
/// buffer, as in CORBA CDR.
#[derive(Debug)]
pub struct BinWriter {
    buf: Vec<u8>,
    align: bool,
}

impl BinWriter {
    /// Unaligned (RMI-style) writer.
    pub fn new() -> Self {
        BinWriter {
            buf: Vec::with_capacity(64),
            align: false,
        }
    }

    /// CDR-aligned writer.
    pub fn aligned() -> Self {
        BinWriter {
            buf: Vec::with_capacity(64),
            align: true,
        }
    }

    fn pad_to(&mut self, n: usize) {
        if self.align {
            while !self.buf.len().is_multiple_of(n) {
                self.buf.push(0);
            }
        }
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Write a little-endian `u16` (aligned in CDR mode).
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.pad_to(2);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a little-endian `u32` (aligned in CDR mode).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.pad_to(4);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a little-endian `u64` (aligned in CDR mode).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.pad_to(8);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a little-endian `i32`.
    pub fn i32(&mut self, v: i32) -> &mut Self {
        self.u32(v as u32)
    }

    /// Write a little-endian `i64`.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.u64(v as u64)
    }

    /// Write an `f32` as its IEEE-754 bits.
    pub fn f32(&mut self, v: f32) -> &mut Self {
        self.u32(v.to_bits())
    }

    /// Write an `f64` as its IEEE-754 bits.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Length-prefixed UTF-8 string (u32 length).
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Raw bytes, no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Finish and take the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Default for BinWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// The matching reader.
#[derive(Debug)]
pub struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
    align: bool,
}

impl<'a> BinReader<'a> {
    /// Unaligned reader.
    pub fn new(buf: &'a [u8]) -> Self {
        BinReader {
            buf,
            pos: 0,
            align: false,
        }
    }

    /// CDR-aligned reader.
    pub fn aligned(buf: &'a [u8]) -> Self {
        BinReader {
            buf,
            pos: 0,
            align: true,
        }
    }

    fn skip_pad(&mut self, n: usize) {
        if self.align {
            while !self.pos.is_multiple_of(n) {
                self.pos += 1;
            }
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::new(format!(
                "truncated: need {n} bytes at {}",
                self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16` (skipping CDR padding).
    pub fn u16(&mut self) -> Result<u16, WireError> {
        self.skip_pad(2);
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32` (skipping CDR padding).
    pub fn u32(&mut self) -> Result<u32, WireError> {
        self.skip_pad(4);
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64` (skipping CDR padding).
    pub fn u64(&mut self) -> Result<u64, WireError> {
        self.skip_pad(8);
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(self.u32()? as i32)
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// Read an `f32` from its IEEE-754 bits.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Read an `f64` from its IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a u32-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::new("invalid utf-8"))
    }

    /// Expect exact magic bytes.
    pub fn expect(&mut self, magic: &[u8]) -> Result<(), WireError> {
        let got = self.take(magic.len())?;
        if got != magic {
            return Err(WireError::new(format!(
                "bad magic: expected {magic:?}, got {got:?}"
            )));
        }
        Ok(())
    }

    /// Whether all input was consumed (ignoring trailing alignment pad).
    pub fn at_end(&self) -> bool {
        self.buf[self.pos..].iter().all(|&b| b == 0) || self.pos >= self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unaligned_roundtrip() {
        let mut w = BinWriter::new();
        w.u8(7).u16(300).u32(70_000).u64(1 << 40).i32(-5).i64(-6);
        w.f32(1.5).f64(-2.25).string("héllo");
        let buf = w.finish();
        let mut r = BinReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i32().unwrap(), -5);
        assert_eq!(r.i64().unwrap(), -6);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.f64().unwrap(), -2.25);
        assert_eq!(r.string().unwrap(), "héllo");
        assert!(r.at_end());
    }

    #[test]
    fn aligned_writer_pads_and_reader_skips() {
        let mut w = BinWriter::aligned();
        w.u8(1).u32(2).u8(3).u64(4);
        let buf = w.finish();
        // u8 at 0, pad to 4, u32 at 4..8, u8 at 8, pad to 16, u64 at 16..24
        assert_eq!(buf.len(), 24);
        let mut r = BinReader::aligned(&buf);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u32().unwrap(), 2);
        assert_eq!(r.u8().unwrap(), 3);
        assert_eq!(r.u64().unwrap(), 4);
    }

    #[test]
    fn truncated_input_errors() {
        let buf = vec![1, 2];
        let mut r = BinReader::new(&buf);
        assert!(r.u64().is_err());
    }

    #[test]
    fn bad_magic_detected() {
        let buf = b"GIOP".to_vec();
        let mut r = BinReader::new(&buf);
        assert!(r.expect(b"JRMI").is_err());
        let mut r2 = BinReader::new(&buf);
        assert!(r2.expect(b"GIOP").is_ok());
    }
}
