//! RMI-like codec: compact tagged binary, JRMP-style magic header.

use crate::binary::{BinReader, BinWriter};
use crate::{Protocol, Reply, Request, TraceContext, WireError, WireValue};

const MAGIC: &[u8] = b"JRMI";
// Version 3 added the message id (at-most-once dedup key) to the header.
// Version 4 appended the trace context (trace/span/parent span ids) right
// after it; version-3 frames still decode, with `TraceContext::NONE`.
// Version 5 appended the served object's property version to *reply*
// headers (requests are unchanged); version-4 replies decode with
// version 0.
// Version 6 added the replica-sync and promote request tags (crash-stop
// failover). The header layout is unchanged, so version-5 frames still
// decode as before.
// Version 7 added the batch request/reply tags (batched remote
// invocation). Again the header layout is unchanged, so version-6 frames
// still decode as before.
const VERSION: u8 = 7;

pub(crate) fn write_ctx(w: &mut BinWriter, ctx: TraceContext) {
    w.u64(ctx.trace_id).u64(ctx.span_id).u64(ctx.parent_span_id);
}

pub(crate) fn read_ctx(r: &mut BinReader<'_>) -> Result<TraceContext, WireError> {
    Ok(TraceContext {
        trace_id: r.u64()?,
        span_id: r.u64()?,
        parent_span_id: r.u64()?,
    })
}

// Value tags.
const T_NULL: u8 = 0;
const T_BOOL: u8 = 1;
const T_INT: u8 = 2;
const T_LONG: u8 = 3;
const T_FLOAT: u8 = 4;
const T_DOUBLE: u8 = 5;
const T_STR: u8 = 6;
const T_REMOTE: u8 = 7;
const T_ARRAY: u8 = 8;
const T_STATE: u8 = 9;

// Request tags.
const R_CALL: u8 = 0;
const R_CREATE: u8 = 1;
const R_DISCOVER: u8 = 2;
const R_FETCH: u8 = 3;
const R_INSTALL: u8 = 4;
const R_FORWARD: u8 = 5;
const R_REPLICA: u8 = 6;
const R_PROMOTE: u8 = 7;
const R_BATCH: u8 = 8;

// Reply tags.
const P_VALUE: u8 = 0;
const P_EXCEPTION: u8 = 1;
const P_FAULT: u8 = 2;
const P_BATCH: u8 = 3;

pub(crate) fn write_value(w: &mut BinWriter, v: &WireValue) {
    match v {
        WireValue::Null => {
            w.u8(T_NULL);
        }
        WireValue::Bool(b) => {
            w.u8(T_BOOL).u8(u8::from(*b));
        }
        WireValue::Int(i) => {
            w.u8(T_INT).i32(*i);
        }
        WireValue::Long(i) => {
            w.u8(T_LONG).i64(*i);
        }
        WireValue::Float(x) => {
            w.u8(T_FLOAT).f32(*x);
        }
        WireValue::Double(x) => {
            w.u8(T_DOUBLE).f64(*x);
        }
        WireValue::Str(s) => {
            w.u8(T_STR).string(s);
        }
        WireValue::Remote {
            node,
            object,
            class,
        } => {
            w.u8(T_REMOTE).u32(*node).u64(*object).string(class);
        }
        WireValue::Array(items) => {
            w.u8(T_ARRAY).u32(items.len() as u32);
            for item in items {
                write_value(w, item);
            }
        }
        WireValue::ObjectState { class, fields } => {
            w.u8(T_STATE).string(class).u32(fields.len() as u32);
            for f in fields {
                write_value(w, f);
            }
        }
    }
}

pub(crate) fn read_value(r: &mut BinReader<'_>) -> Result<WireValue, WireError> {
    Ok(match r.u8()? {
        T_NULL => WireValue::Null,
        T_BOOL => WireValue::Bool(r.u8()? != 0),
        T_INT => WireValue::Int(r.i32()?),
        T_LONG => WireValue::Long(r.i64()?),
        T_FLOAT => WireValue::Float(r.f32()?),
        T_DOUBLE => WireValue::Double(r.f64()?),
        T_STR => WireValue::Str(r.string()?),
        T_REMOTE => WireValue::Remote {
            node: r.u32()?,
            object: r.u64()?,
            class: r.string()?,
        },
        T_ARRAY => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(read_value(r)?);
            }
            WireValue::Array(items)
        }
        T_STATE => {
            let class = r.string()?;
            let n = r.u32()? as usize;
            let mut fields = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                fields.push(read_value(r)?);
            }
            WireValue::ObjectState { class, fields }
        }
        tag => return Err(WireError::new(format!("unknown value tag {tag}"))),
    })
}

pub(crate) fn write_request(w: &mut BinWriter, req: &Request) {
    match req {
        Request::Call {
            object,
            method,
            args,
        } => {
            w.u8(R_CALL)
                .u64(*object)
                .string(method)
                .u32(args.len() as u32);
            for a in args {
                write_value(w, a);
            }
        }
        Request::Create { class, ctor, args } => {
            w.u8(R_CREATE)
                .string(class)
                .u16(*ctor)
                .u32(args.len() as u32);
            for a in args {
                write_value(w, a);
            }
        }
        Request::Discover { class } => {
            w.u8(R_DISCOVER).string(class);
        }
        Request::Fetch { object } => {
            w.u8(R_FETCH).u64(*object);
        }
        Request::Install { state, source } => {
            w.u8(R_INSTALL);
            match source {
                Some((n, o)) => {
                    w.u8(1).u32(*n).u64(*o);
                }
                None => {
                    w.u8(0);
                }
            }
            write_value(w, state);
        }
        Request::Forward {
            object,
            to_node,
            to_object,
        } => {
            w.u8(R_FORWARD).u64(*object).u32(*to_node).u64(*to_object);
        }
        Request::ReplicaSync {
            object,
            version,
            state,
        } => {
            w.u8(R_REPLICA).u64(*object).u64(*version);
            write_value(w, state);
        }
        Request::Promote { node, object } => {
            w.u8(R_PROMOTE).u32(*node).u64(*object);
        }
        Request::Batch(ops) => {
            w.u8(R_BATCH).u32(ops.len() as u32);
            for op in ops {
                write_request(w, op);
            }
        }
    }
}

pub(crate) fn read_request(r: &mut BinReader<'_>) -> Result<Request, WireError> {
    Ok(match r.u8()? {
        R_CALL => {
            let object = r.u64()?;
            let method = r.string()?;
            let n = r.u32()? as usize;
            let mut args = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                args.push(read_value(r)?);
            }
            Request::Call {
                object,
                method,
                args,
            }
        }
        R_CREATE => {
            let class = r.string()?;
            let ctor = r.u16()?;
            let n = r.u32()? as usize;
            let mut args = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                args.push(read_value(r)?);
            }
            Request::Create { class, ctor, args }
        }
        R_DISCOVER => Request::Discover { class: r.string()? },
        R_FETCH => Request::Fetch { object: r.u64()? },
        R_INSTALL => {
            let source = if r.u8()? != 0 {
                Some((r.u32()?, r.u64()?))
            } else {
                None
            };
            Request::Install {
                state: read_value(r)?,
                source,
            }
        }
        R_FORWARD => Request::Forward {
            object: r.u64()?,
            to_node: r.u32()?,
            to_object: r.u64()?,
        },
        R_REPLICA => Request::ReplicaSync {
            object: r.u64()?,
            version: r.u64()?,
            state: read_value(r)?,
        },
        R_PROMOTE => Request::Promote {
            node: r.u32()?,
            object: r.u64()?,
        },
        R_BATCH => {
            let n = r.u32()? as usize;
            let mut ops = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                ops.push(read_request(r)?);
            }
            Request::Batch(ops)
        }
        tag => return Err(WireError::new(format!("unknown request tag {tag}"))),
    })
}

pub(crate) fn write_reply(w: &mut BinWriter, reply: &Reply) {
    match reply {
        Reply::Value(v) => {
            w.u8(P_VALUE);
            write_value(w, v);
        }
        Reply::Exception { class, fields } => {
            w.u8(P_EXCEPTION).string(class).u32(fields.len() as u32);
            for f in fields {
                write_value(w, f);
            }
        }
        Reply::Fault(msg) => {
            w.u8(P_FAULT).string(msg);
        }
        Reply::Batch(ops) => {
            w.u8(P_BATCH).u32(ops.len() as u32);
            for (version, reply) in ops {
                w.u64(*version);
                write_reply(w, reply);
            }
        }
    }
}

pub(crate) fn read_reply(r: &mut BinReader<'_>) -> Result<Reply, WireError> {
    Ok(match r.u8()? {
        P_VALUE => Reply::Value(read_value(r)?),
        P_EXCEPTION => {
            let class = r.string()?;
            let n = r.u32()? as usize;
            let mut fields = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                fields.push(read_value(r)?);
            }
            Reply::Exception { class, fields }
        }
        P_FAULT => Reply::Fault(r.string()?),
        P_BATCH => {
            let n = r.u32()? as usize;
            let mut ops = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                let version = r.u64()?;
                ops.push((version, read_reply(r)?));
            }
            Reply::Batch(ops)
        }
        tag => return Err(WireError::new(format!("unknown reply tag {tag}"))),
    })
}

/// The RMI-like protocol: compact tagged binary with a JRMP-style header.
#[derive(Debug, Clone, Copy, Default)]
pub struct RmiCodec;

impl RmiCodec {
    /// Create the codec.
    pub fn new() -> Self {
        RmiCodec
    }
}

impl Protocol for RmiCodec {
    fn name(&self) -> &'static str {
        "RMI"
    }

    fn encode_request(&self, id: u64, ctx: TraceContext, req: &Request) -> Vec<u8> {
        let mut w = BinWriter::new();
        w.raw(MAGIC).u8(VERSION).u64(id);
        write_ctx(&mut w, ctx);
        write_request(&mut w, req);
        w.finish()
    }

    fn decode_request(&self, bytes: &[u8]) -> Result<(u64, TraceContext, Request), WireError> {
        let mut r = BinReader::new(bytes);
        r.expect(MAGIC)?;
        let version = r.u8()?;
        let id = r.u64()?;
        let ctx = if version >= 4 {
            read_ctx(&mut r)?
        } else {
            TraceContext::NONE
        };
        Ok((id, ctx, read_request(&mut r)?))
    }

    fn encode_reply(&self, id: u64, ctx: TraceContext, obj_version: u64, reply: &Reply) -> Vec<u8> {
        let mut w = BinWriter::new();
        w.raw(MAGIC).u8(VERSION).u64(id);
        write_ctx(&mut w, ctx);
        w.u64(obj_version);
        write_reply(&mut w, reply);
        w.finish()
    }

    fn decode_reply(&self, bytes: &[u8]) -> Result<(u64, TraceContext, u64, Reply), WireError> {
        let mut r = BinReader::new(bytes);
        r.expect(MAGIC)?;
        let version = r.u8()?;
        let id = r.u64()?;
        let ctx = if version >= 4 {
            read_ctx(&mut r)?
        } else {
            TraceContext::NONE
        };
        let obj_version = if version >= 5 { r.u64()? } else { 0 };
        Ok((id, ctx, obj_version, read_reply(&mut r)?))
    }

    /// JRMP stacks were comparatively lean: ~40 µs per message.
    fn overhead_ns(&self) -> u64 {
        40_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata;

    #[test]
    fn roundtrips_all_samples() {
        testdata::assert_roundtrips(&RmiCodec::new());
    }

    #[test]
    fn rejects_wrong_magic() {
        let codec = RmiCodec::new();
        let mut bytes = codec.encode_request(4, TraceContext::NONE, &Request::Fetch { object: 1 });
        bytes[0] = b'X';
        assert!(codec.decode_request(&bytes).is_err());
    }

    #[test]
    fn rejects_unknown_tags() {
        let codec = RmiCodec::new();
        let mut bytes = codec.encode_reply(4, TraceContext::NONE, 0, &Reply::Fault("x".into()));
        // Reply tag position: magic(4) + version(1) + message id(8) + trace
        // context(24) + object version(8).
        bytes[45] = 99;
        assert!(codec.decode_reply(&bytes).is_err());
    }

    #[test]
    fn call_request_is_compact() {
        let codec = RmiCodec::new();
        let bytes = codec.encode_request(
            1,
            TraceContext::NONE,
            &Request::Call {
                object: 1,
                method: "m".into(),
                args: vec![WireValue::Long(7)],
            },
        );
        assert!(bytes.len() < 72, "len = {}", bytes.len());
    }

    #[test]
    fn message_id_is_independent_of_body() {
        let codec = RmiCodec::new();
        let req = Request::Fetch { object: 1 };
        let a = codec.encode_request(1, TraceContext::NONE, &req);
        let b = codec.encode_request(2, TraceContext::NONE, &req);
        assert_ne!(a, b, "id is part of the frame");
        let (id_a, _, body_a) = codec.decode_request(&a).unwrap();
        let (id_b, _, body_b) = codec.decode_request(&b).unwrap();
        assert_eq!((id_a, id_b), (1, 2));
        assert_eq!(body_a, body_b);
    }

    #[test]
    fn version_3_frames_decode_with_no_trace_context() {
        let codec = RmiCodec::new();
        let ctx = TraceContext {
            trace_id: 5,
            span_id: 6,
            parent_span_id: 1,
        };
        let v6 = codec.encode_request(9, ctx, &Request::Fetch { object: 2 });
        // Re-create the pre-tracing frame: version byte 3, no trace context
        // field (drop bytes 13..37).
        let mut v3 = v6.clone();
        v3[4] = 3;
        v3.drain(13..37);
        let (id, back_ctx, req) = codec.decode_request(&v3).unwrap();
        assert_eq!(id, 9);
        assert_eq!(back_ctx, TraceContext::NONE);
        assert_eq!(req, Request::Fetch { object: 2 });
    }

    #[test]
    fn version_5_frames_decode_unchanged() {
        // Version 6 only added request tags; the header layout is identical,
        // so a version-5 frame is byte-for-byte a version-6 frame with a
        // different version byte. Pre-failover peers must keep parsing.
        let codec = RmiCodec::new();
        let ctx = TraceContext {
            trace_id: 8,
            span_id: 2,
            parent_span_id: 1,
        };
        let mut req5 = codec.encode_request(
            11,
            ctx,
            &Request::Call {
                object: 4,
                method: "tick@0".into(),
                args: vec![WireValue::Int(1)],
            },
        );
        req5[4] = 5;
        let (id, back_ctx, req) = codec.decode_request(&req5).unwrap();
        assert_eq!((id, back_ctx), (11, ctx));
        assert!(matches!(req, Request::Call { object: 4, .. }));
        let mut rep5 = codec.encode_reply(11, ctx, 9, &Reply::Value(WireValue::Int(3)));
        rep5[4] = 5;
        let (id, back_ctx, ver, reply) = codec.decode_reply(&rep5).unwrap();
        assert_eq!((id, back_ctx, ver), (11, ctx, 9));
        assert_eq!(reply, Reply::Value(WireValue::Int(3)));
    }

    #[test]
    fn version_6_frames_decode_unchanged() {
        // Version 7 only added the batch tags; the header layout is
        // identical, so a version-6 frame is byte-for-byte a version-7
        // frame with a different version byte. Pre-batching peers must keep
        // parsing.
        let codec = RmiCodec::new();
        let ctx = TraceContext {
            trace_id: 3,
            span_id: 4,
            parent_span_id: 2,
        };
        let mut req6 = codec.encode_request(21, ctx, &Request::Promote { node: 1, object: 5 });
        req6[4] = 6;
        let (id, back_ctx, req) = codec.decode_request(&req6).unwrap();
        assert_eq!((id, back_ctx), (21, ctx));
        assert_eq!(req, Request::Promote { node: 1, object: 5 });
        let mut rep6 = codec.encode_reply(21, ctx, 4, &Reply::Value(WireValue::Long(8)));
        rep6[4] = 6;
        let (id, back_ctx, ver, reply) = codec.decode_reply(&rep6).unwrap();
        assert_eq!((id, back_ctx, ver), (21, ctx, 4));
        assert_eq!(reply, Reply::Value(WireValue::Long(8)));
    }

    #[test]
    fn version_4_replies_decode_with_object_version_zero() {
        let codec = RmiCodec::new();
        let ctx = TraceContext {
            trace_id: 5,
            span_id: 6,
            parent_span_id: 1,
        };
        let v6 = codec.encode_reply(9, ctx, 77, &Reply::Value(WireValue::Int(3)));
        // Re-create the pre-caching frame: version byte 4, no object
        // version field (drop bytes 37..45).
        let mut v4 = v6.clone();
        v4[4] = 4;
        v4.drain(37..45);
        let (id, back_ctx, ver, reply) = codec.decode_reply(&v4).unwrap();
        assert_eq!(id, 9);
        assert_eq!(back_ctx, ctx);
        assert_eq!(ver, 0, "pre-caching peers imply version 0");
        assert_eq!(reply, Reply::Value(WireValue::Int(3)));
    }
}
