//! RMI-like codec: compact tagged binary, JRMP-style magic header.

use crate::binary::{BinReader, BinWriter};
use crate::frame::{FrameHeader, Payload, RequestKind};
use crate::sig::{SigEnc, SigTable};
use crate::{Protocol, Reply, Request, TraceContext, WireError, WireValue};

const MAGIC: &[u8] = b"JRMI";
// Version 3 added the message id (at-most-once dedup key) to the header.
// Version 4 appended the trace context (trace/span/parent span ids) right
// after it; version-3 frames still decode, with `TraceContext::NONE`.
// Version 5 appended the served object's property version to *reply*
// headers (requests are unchanged); version-4 replies decode with
// version 0.
// Version 6 added the replica-sync and promote request tags (crash-stop
// failover). The header layout is unchanged, so version-5 frames still
// decode as before.
// Version 7 added the batch request/reply tags (batched remote
// invocation). Again the header layout is unchanged, so version-6 frames
// still decode as before.
// Version 8 adds signature interning: signature-position strings (method
// descriptors and class names, never payload `Str` values) are prefixed
// with a marker byte — inline-and-define, or a u32 reference into the
// link's `SigTable`. Version-8 frames are only emitted when a table is
// supplied; the stateless encode path still emits version-7 bytes, and
// version-7 frames still decode as before.
const VERSION: u8 = 7;
const VERSION_SIG: u8 = 8;

// Signature markers (version >= 8 only).
const SIG_INLINE: u8 = 0;
const SIG_REF: u8 = 1;

/// Decoder preallocation caps for untrusted length fields: a corrupt or
/// adversarial count can claim up to `u32::MAX` elements, so
/// `Vec::with_capacity` is clamped and the vector grows only as elements
/// actually parse. Shared by the RMI and GIOP codecs (GIOP delegates its
/// body to these readers).
pub(crate) const MAX_PREALLOC_VALUES: usize = 1024;
pub(crate) const MAX_PREALLOC_OPS: usize = 256;

pub(crate) fn write_ctx(w: &mut BinWriter, ctx: TraceContext) {
    w.u64(ctx.trace_id).u64(ctx.span_id).u64(ctx.parent_span_id);
}

pub(crate) fn read_ctx(r: &mut BinReader<'_>) -> Result<TraceContext, WireError> {
    Ok(TraceContext {
        trace_id: r.u64()?,
        span_id: r.u64()?,
        parent_span_id: r.u64()?,
    })
}

/// Option<&mut SigTable> threaded through the recursive writers/readers.
/// Held by mutable reference so recursion does not consume the option.
pub(crate) type Sigs<'t, 's> = &'t mut Option<&'s mut SigTable>;

/// Write a signature-position string: plain when no table is negotiated,
/// marker-prefixed (define-inline or reference) under version 8.
fn write_sig(w: &mut BinWriter, s: &str, sigs: Sigs<'_, '_>) {
    match sigs.as_deref_mut() {
        None => {
            w.string(s);
        }
        Some(t) => match t.encode_sig(s) {
            SigEnc::Ref(id) => {
                w.u8(SIG_REF).u32(id);
            }
            SigEnc::Inline => {
                w.u8(SIG_INLINE).string(s);
            }
        },
    }
}

/// Read a signature-position string. `sigged` frames (v8) carry a marker;
/// older frames carry the plain string. Inline signatures are interned
/// into the table (mirroring the encoder's define-on-first-use), and
/// references are resolved from it — a reference without a table is an
/// error, since only the table that saw the defining frame can expand it.
fn read_sig(r: &mut BinReader<'_>, sigged: bool, sigs: Sigs<'_, '_>) -> Result<String, WireError> {
    if !sigged {
        return r.string();
    }
    match r.u8()? {
        SIG_INLINE => {
            let s = r.string()?;
            if let Some(t) = sigs.as_deref_mut() {
                t.intern(&s);
            }
            Ok(s)
        }
        SIG_REF => {
            let id = r.u32()?;
            match sigs.as_deref_mut() {
                Some(t) => Ok(t.resolve(id)?.to_owned()),
                None => Err(WireError::new(format!(
                    "sigref {id} without a negotiated table"
                ))),
            }
        }
        m => Err(WireError::new(format!("unknown sig marker {m}"))),
    }
}

// Value tags.
const T_NULL: u8 = 0;
const T_BOOL: u8 = 1;
const T_INT: u8 = 2;
const T_LONG: u8 = 3;
const T_FLOAT: u8 = 4;
const T_DOUBLE: u8 = 5;
const T_STR: u8 = 6;
const T_REMOTE: u8 = 7;
const T_ARRAY: u8 = 8;
const T_STATE: u8 = 9;

// Request tags.
const R_CALL: u8 = 0;
const R_CREATE: u8 = 1;
const R_DISCOVER: u8 = 2;
const R_FETCH: u8 = 3;
const R_INSTALL: u8 = 4;
const R_FORWARD: u8 = 5;
const R_REPLICA: u8 = 6;
const R_PROMOTE: u8 = 7;
const R_BATCH: u8 = 8;

// Reply tags.
const P_VALUE: u8 = 0;
const P_EXCEPTION: u8 = 1;
const P_FAULT: u8 = 2;
const P_BATCH: u8 = 3;

fn request_kind(tag: u8) -> Result<RequestKind, WireError> {
    Ok(match tag {
        R_CALL => RequestKind::Call,
        R_CREATE => RequestKind::Create,
        R_DISCOVER => RequestKind::Discover,
        R_FETCH => RequestKind::Fetch,
        R_INSTALL => RequestKind::Install,
        R_FORWARD => RequestKind::Forward,
        R_REPLICA => RequestKind::ReplicaSync,
        R_PROMOTE => RequestKind::Promote,
        R_BATCH => RequestKind::Batch,
        tag => return Err(WireError::new(format!("unknown request tag {tag}"))),
    })
}

pub(crate) fn write_value(w: &mut BinWriter, v: &WireValue, sigs: Sigs<'_, '_>) {
    match v {
        WireValue::Null => {
            w.u8(T_NULL);
        }
        WireValue::Bool(b) => {
            w.u8(T_BOOL).u8(u8::from(*b));
        }
        WireValue::Int(i) => {
            w.u8(T_INT).i32(*i);
        }
        WireValue::Long(i) => {
            w.u8(T_LONG).i64(*i);
        }
        WireValue::Float(x) => {
            w.u8(T_FLOAT).f32(*x);
        }
        WireValue::Double(x) => {
            w.u8(T_DOUBLE).f64(*x);
        }
        WireValue::Str(s) => {
            w.u8(T_STR).string(s);
        }
        WireValue::Remote {
            node,
            object,
            class,
        } => {
            w.u8(T_REMOTE).u32(*node).u64(*object);
            write_sig(w, class, sigs);
        }
        WireValue::Array(items) => {
            w.u8(T_ARRAY).len_u32(items.len());
            for item in items {
                write_value(w, item, sigs);
            }
        }
        WireValue::ObjectState { class, fields } => {
            w.u8(T_STATE);
            write_sig(w, class, sigs);
            w.len_u32(fields.len());
            for f in fields {
                write_value(w, f, sigs);
            }
        }
    }
}

pub(crate) fn read_value(
    r: &mut BinReader<'_>,
    sigged: bool,
    sigs: Sigs<'_, '_>,
) -> Result<WireValue, WireError> {
    Ok(match r.u8()? {
        T_NULL => WireValue::Null,
        T_BOOL => WireValue::Bool(r.u8()? != 0),
        T_INT => WireValue::Int(r.i32()?),
        T_LONG => WireValue::Long(r.i64()?),
        T_FLOAT => WireValue::Float(r.f32()?),
        T_DOUBLE => WireValue::Double(r.f64()?),
        T_STR => WireValue::Str(r.string()?),
        T_REMOTE => WireValue::Remote {
            node: r.u32()?,
            object: r.u64()?,
            class: read_sig(r, sigged, sigs)?,
        },
        T_ARRAY => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(MAX_PREALLOC_VALUES));
            for _ in 0..n {
                items.push(read_value(r, sigged, sigs)?);
            }
            WireValue::Array(items)
        }
        T_STATE => {
            let class = read_sig(r, sigged, sigs)?;
            let n = r.u32()? as usize;
            let mut fields = Vec::with_capacity(n.min(MAX_PREALLOC_VALUES));
            for _ in 0..n {
                fields.push(read_value(r, sigged, sigs)?);
            }
            WireValue::ObjectState { class, fields }
        }
        tag => return Err(WireError::new(format!("unknown value tag {tag}"))),
    })
}

pub(crate) fn write_request(w: &mut BinWriter, req: &Request, sigs: Sigs<'_, '_>) {
    match req {
        Request::Call {
            object,
            method,
            args,
        } => {
            w.u8(R_CALL).u64(*object);
            write_sig(w, method, sigs);
            w.len_u32(args.len());
            for a in args {
                write_value(w, a, sigs);
            }
        }
        Request::Create { class, ctor, args } => {
            w.u8(R_CREATE);
            write_sig(w, class, sigs);
            w.u16(*ctor).len_u32(args.len());
            for a in args {
                write_value(w, a, sigs);
            }
        }
        Request::Discover { class } => {
            w.u8(R_DISCOVER);
            write_sig(w, class, sigs);
        }
        Request::Fetch { object } => {
            w.u8(R_FETCH).u64(*object);
        }
        Request::Install { state, source } => {
            w.u8(R_INSTALL);
            match source {
                Some((n, o)) => {
                    w.u8(1).u32(*n).u64(*o);
                }
                None => {
                    w.u8(0);
                }
            }
            write_value(w, state, sigs);
        }
        Request::Forward {
            object,
            to_node,
            to_object,
        } => {
            w.u8(R_FORWARD).u64(*object).u32(*to_node).u64(*to_object);
        }
        Request::ReplicaSync {
            object,
            version,
            state,
        } => {
            w.u8(R_REPLICA).u64(*object).u64(*version);
            write_value(w, state, sigs);
        }
        Request::Promote { node, object } => {
            w.u8(R_PROMOTE).u32(*node).u64(*object);
        }
        Request::Batch(ops) => {
            w.u8(R_BATCH).len_u32(ops.len());
            for op in ops {
                write_request(w, op, sigs);
            }
        }
    }
}

pub(crate) fn read_request(
    r: &mut BinReader<'_>,
    sigged: bool,
    sigs: Sigs<'_, '_>,
) -> Result<Request, WireError> {
    Ok(match r.u8()? {
        R_CALL => {
            let object = r.u64()?;
            let method = read_sig(r, sigged, sigs)?;
            let n = r.u32()? as usize;
            let mut args = Vec::with_capacity(n.min(MAX_PREALLOC_OPS));
            for _ in 0..n {
                args.push(read_value(r, sigged, sigs)?);
            }
            Request::Call {
                object,
                method,
                args,
            }
        }
        R_CREATE => {
            let class = read_sig(r, sigged, sigs)?;
            let ctor = r.u16()?;
            let n = r.u32()? as usize;
            let mut args = Vec::with_capacity(n.min(MAX_PREALLOC_OPS));
            for _ in 0..n {
                args.push(read_value(r, sigged, sigs)?);
            }
            Request::Create { class, ctor, args }
        }
        R_DISCOVER => Request::Discover {
            class: read_sig(r, sigged, sigs)?,
        },
        R_FETCH => Request::Fetch { object: r.u64()? },
        R_INSTALL => {
            let source = if r.u8()? != 0 {
                Some((r.u32()?, r.u64()?))
            } else {
                None
            };
            Request::Install {
                state: read_value(r, sigged, sigs)?,
                source,
            }
        }
        R_FORWARD => Request::Forward {
            object: r.u64()?,
            to_node: r.u32()?,
            to_object: r.u64()?,
        },
        R_REPLICA => Request::ReplicaSync {
            object: r.u64()?,
            version: r.u64()?,
            state: read_value(r, sigged, sigs)?,
        },
        R_PROMOTE => Request::Promote {
            node: r.u32()?,
            object: r.u64()?,
        },
        R_BATCH => {
            let n = r.u32()? as usize;
            let mut ops = Vec::with_capacity(n.min(MAX_PREALLOC_OPS));
            for _ in 0..n {
                ops.push(read_request(r, sigged, sigs)?);
            }
            Request::Batch(ops)
        }
        tag => return Err(WireError::new(format!("unknown request tag {tag}"))),
    })
}

pub(crate) fn write_reply(w: &mut BinWriter, reply: &Reply, sigs: Sigs<'_, '_>) {
    match reply {
        Reply::Value(v) => {
            w.u8(P_VALUE);
            write_value(w, v, sigs);
        }
        Reply::Exception { class, fields } => {
            w.u8(P_EXCEPTION);
            write_sig(w, class, sigs);
            w.len_u32(fields.len());
            for f in fields {
                write_value(w, f, sigs);
            }
        }
        Reply::Fault(msg) => {
            w.u8(P_FAULT).string(msg);
        }
        Reply::Batch(ops) => {
            w.u8(P_BATCH).len_u32(ops.len());
            for (version, reply) in ops {
                w.u64(*version);
                write_reply(w, reply, sigs);
            }
        }
    }
}

pub(crate) fn read_reply(
    r: &mut BinReader<'_>,
    sigged: bool,
    sigs: Sigs<'_, '_>,
) -> Result<Reply, WireError> {
    Ok(match r.u8()? {
        P_VALUE => Reply::Value(read_value(r, sigged, sigs)?),
        P_EXCEPTION => {
            let class = read_sig(r, sigged, sigs)?;
            let n = r.u32()? as usize;
            let mut fields = Vec::with_capacity(n.min(MAX_PREALLOC_OPS));
            for _ in 0..n {
                fields.push(read_value(r, sigged, sigs)?);
            }
            Reply::Exception { class, fields }
        }
        P_FAULT => Reply::Fault(r.string()?),
        P_BATCH => {
            let n = r.u32()? as usize;
            let mut ops = Vec::with_capacity(n.min(MAX_PREALLOC_OPS));
            for _ in 0..n {
                let version = r.u64()?;
                ops.push((version, read_reply(r, sigged, sigs)?));
            }
            Reply::Batch(ops)
        }
        tag => return Err(WireError::new(format!("unknown reply tag {tag}"))),
    })
}

/// Lazy-payload materialisation for the binary codecs: resume reading the
/// frame at the request tag recorded by the header scan.
pub(crate) fn materialise_binary(
    buf: &[u8],
    pos: usize,
    aligned: bool,
    sigged: bool,
    sigs: Sigs<'_, '_>,
) -> Result<Request, WireError> {
    let mut r = BinReader::resume(buf, pos, aligned);
    read_request(&mut r, sigged, sigs)
}

/// Shared request-header scan for the two binary codecs: after the
/// codec-specific magic/version/id/ctx prefix, peek the request tag and
/// record where the body starts without touching the payload.
pub(crate) fn binary_header<'a>(
    buf: &'a [u8],
    r: &mut BinReader<'a>,
    msg_id: u64,
    ctx: TraceContext,
    aligned: bool,
    sigged: bool,
) -> Result<FrameHeader<'a>, WireError> {
    let pos = r.position();
    let kind = request_kind(r.u8()?)?;
    Ok(FrameHeader {
        msg_id,
        ctx,
        kind,
        payload: Payload::Binary {
            buf,
            pos,
            aligned,
            sigged,
        },
    })
}

/// The RMI-like protocol: compact tagged binary with a JRMP-style header.
#[derive(Debug, Clone, Copy, Default)]
pub struct RmiCodec;

impl RmiCodec {
    /// Create the codec.
    pub fn new() -> Self {
        RmiCodec
    }
}

impl Protocol for RmiCodec {
    fn name(&self) -> &'static str {
        "RMI"
    }

    fn encode_request_into(
        &self,
        id: u64,
        ctx: TraceContext,
        req: &Request,
        mut sigs: Option<&mut SigTable>,
        out: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        let mut w = BinWriter::reuse(std::mem::take(out));
        let version = if sigs.is_some() { VERSION_SIG } else { VERSION };
        w.raw(MAGIC).u8(version).u64(id);
        write_ctx(&mut w, ctx);
        write_request(&mut w, req, &mut sigs);
        *out = w.finish()?;
        Ok(())
    }

    fn decode_request_header<'a>(&self, bytes: &'a [u8]) -> Result<FrameHeader<'a>, WireError> {
        let mut r = BinReader::new(bytes);
        r.expect(MAGIC)?;
        let version = r.u8()?;
        let id = r.u64()?;
        let ctx = if version >= 4 {
            read_ctx(&mut r)?
        } else {
            TraceContext::NONE
        };
        binary_header(bytes, &mut r, id, ctx, false, version >= 8)
    }

    fn encode_reply_into(
        &self,
        id: u64,
        ctx: TraceContext,
        obj_version: u64,
        reply: &Reply,
        mut sigs: Option<&mut SigTable>,
        out: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        let mut w = BinWriter::reuse(std::mem::take(out));
        let version = if sigs.is_some() { VERSION_SIG } else { VERSION };
        w.raw(MAGIC).u8(version).u64(id);
        write_ctx(&mut w, ctx);
        w.u64(obj_version);
        write_reply(&mut w, reply, &mut sigs);
        *out = w.finish()?;
        Ok(())
    }

    fn decode_reply_with(
        &self,
        bytes: &[u8],
        mut sigs: Option<&mut SigTable>,
    ) -> Result<(u64, TraceContext, u64, Reply), WireError> {
        let mut r = BinReader::new(bytes);
        r.expect(MAGIC)?;
        let version = r.u8()?;
        let id = r.u64()?;
        let ctx = if version >= 4 {
            read_ctx(&mut r)?
        } else {
            TraceContext::NONE
        };
        let obj_version = if version >= 5 { r.u64()? } else { 0 };
        let reply = read_reply(&mut r, version >= 8, &mut sigs)?;
        Ok((id, ctx, obj_version, reply))
    }

    /// JRMP stacks were comparatively lean: ~40 µs per message.
    fn overhead_ns(&self) -> u64 {
        40_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata;

    #[test]
    fn roundtrips_all_samples() {
        testdata::assert_roundtrips(&RmiCodec::new());
    }

    #[test]
    fn rejects_wrong_magic() {
        let codec = RmiCodec::new();
        let mut bytes = codec
            .encode_request(4, TraceContext::NONE, &Request::Fetch { object: 1 })
            .unwrap();
        bytes[0] = b'X';
        assert!(codec.decode_request(&bytes).is_err());
    }

    #[test]
    fn rejects_unknown_tags() {
        let codec = RmiCodec::new();
        let mut bytes = codec
            .encode_reply(4, TraceContext::NONE, 0, &Reply::Fault("x".into()))
            .unwrap();
        // Reply tag position: magic(4) + version(1) + message id(8) + trace
        // context(24) + object version(8).
        bytes[45] = 99;
        assert!(codec.decode_reply(&bytes).is_err());
    }

    #[test]
    fn call_request_is_compact() {
        let codec = RmiCodec::new();
        let bytes = codec
            .encode_request(
                1,
                TraceContext::NONE,
                &Request::Call {
                    object: 1,
                    method: "m".into(),
                    args: vec![WireValue::Long(7)],
                },
            )
            .unwrap();
        assert!(bytes.len() < 72, "len = {}", bytes.len());
    }

    #[test]
    fn message_id_is_independent_of_body() {
        let codec = RmiCodec::new();
        let req = Request::Fetch { object: 1 };
        let a = codec.encode_request(1, TraceContext::NONE, &req).unwrap();
        let b = codec.encode_request(2, TraceContext::NONE, &req).unwrap();
        assert_ne!(a, b, "id is part of the frame");
        let (id_a, _, body_a) = codec.decode_request(&a).unwrap();
        let (id_b, _, body_b) = codec.decode_request(&b).unwrap();
        assert_eq!((id_a, id_b), (1, 2));
        assert_eq!(body_a, body_b);
    }

    #[test]
    fn version_3_frames_decode_with_no_trace_context() {
        let codec = RmiCodec::new();
        let ctx = TraceContext {
            trace_id: 5,
            span_id: 6,
            parent_span_id: 1,
        };
        let v6 = codec
            .encode_request(9, ctx, &Request::Fetch { object: 2 })
            .unwrap();
        // Re-create the pre-tracing frame: version byte 3, no trace context
        // field (drop bytes 13..37).
        let mut v3 = v6.clone();
        v3[4] = 3;
        v3.drain(13..37);
        let (id, back_ctx, req) = codec.decode_request(&v3).unwrap();
        assert_eq!(id, 9);
        assert_eq!(back_ctx, TraceContext::NONE);
        assert_eq!(req, Request::Fetch { object: 2 });
    }

    #[test]
    fn version_5_frames_decode_unchanged() {
        // Version 6 only added request tags; the header layout is identical,
        // so a version-5 frame is byte-for-byte a version-6 frame with a
        // different version byte. Pre-failover peers must keep parsing.
        let codec = RmiCodec::new();
        let ctx = TraceContext {
            trace_id: 8,
            span_id: 2,
            parent_span_id: 1,
        };
        let mut req5 = codec
            .encode_request(
                11,
                ctx,
                &Request::Call {
                    object: 4,
                    method: "tick@0".into(),
                    args: vec![WireValue::Int(1)],
                },
            )
            .unwrap();
        req5[4] = 5;
        let (id, back_ctx, req) = codec.decode_request(&req5).unwrap();
        assert_eq!((id, back_ctx), (11, ctx));
        assert!(matches!(req, Request::Call { object: 4, .. }));
        let mut rep5 = codec
            .encode_reply(11, ctx, 9, &Reply::Value(WireValue::Int(3)))
            .unwrap();
        rep5[4] = 5;
        let (id, back_ctx, ver, reply) = codec.decode_reply(&rep5).unwrap();
        assert_eq!((id, back_ctx, ver), (11, ctx, 9));
        assert_eq!(reply, Reply::Value(WireValue::Int(3)));
    }

    #[test]
    fn version_6_frames_decode_unchanged() {
        // Version 7 only added the batch tags; the header layout is
        // identical, so a version-6 frame is byte-for-byte a version-7
        // frame with a different version byte. Pre-batching peers must keep
        // parsing.
        let codec = RmiCodec::new();
        let ctx = TraceContext {
            trace_id: 3,
            span_id: 4,
            parent_span_id: 2,
        };
        let mut req6 = codec
            .encode_request(21, ctx, &Request::Promote { node: 1, object: 5 })
            .unwrap();
        req6[4] = 6;
        let (id, back_ctx, req) = codec.decode_request(&req6).unwrap();
        assert_eq!((id, back_ctx), (21, ctx));
        assert_eq!(req, Request::Promote { node: 1, object: 5 });
        let mut rep6 = codec
            .encode_reply(21, ctx, 4, &Reply::Value(WireValue::Long(8)))
            .unwrap();
        rep6[4] = 6;
        let (id, back_ctx, ver, reply) = codec.decode_reply(&rep6).unwrap();
        assert_eq!((id, back_ctx, ver), (21, ctx, 4));
        assert_eq!(reply, Reply::Value(WireValue::Long(8)));
    }

    #[test]
    fn version_7_frames_decode_unchanged() {
        // Version 8 only changed how signature strings are written, and
        // only when a table is negotiated; a version-7 frame (today's
        // stateless encoding) must keep decoding byte-for-byte, with or
        // without a table on the decode side.
        let codec = RmiCodec::new();
        let req = Request::Call {
            object: 4,
            method: "tick@0".into(),
            args: vec![WireValue::Int(1)],
        };
        let bytes = codec.encode_request(31, TraceContext::NONE, &req).unwrap();
        assert_eq!(bytes[4], 7, "stateless encode stays at version 7");
        let (_, _, back) = codec.decode_request(&bytes).unwrap();
        assert_eq!(back, req);
        let mut table = SigTable::new();
        let header = codec.decode_request_header(&bytes).unwrap();
        assert_eq!(header.materialise(Some(&mut table)).unwrap(), req);
        assert!(
            table.is_empty(),
            "v7 frames never intern: the encoder did not"
        );
    }

    #[test]
    fn sigged_frames_roundtrip_and_shrink() {
        let codec = RmiCodec::new();
        let req = Request::Call {
            object: 4,
            method: "observe_price@17".into(),
            args: vec![WireValue::Remote {
                node: 1,
                object: 9,
                class: "StockMarket".into(),
            }],
        };
        let mut enc = SigTable::new();
        let mut dec = SigTable::new();
        let mut first = Vec::new();
        codec
            .encode_request_into(1, TraceContext::NONE, &req, Some(&mut enc), &mut first)
            .unwrap();
        assert_eq!(first[4], 8, "sigged frames are version 8");
        let h = codec.decode_request_header(&first).unwrap();
        assert_eq!((h.msg_id, h.kind), (1, RequestKind::Call));
        assert_eq!(h.materialise(Some(&mut dec)).unwrap(), req);
        assert_eq!(dec.len(), 2, "method and class interned on decode");

        let mut second = Vec::new();
        codec
            .encode_request_into(2, TraceContext::NONE, &req, Some(&mut enc), &mut second)
            .unwrap();
        assert!(
            second.len() < first.len(),
            "second frame refs instead of re-sending strings: {} vs {}",
            second.len(),
            first.len()
        );
        let h2 = codec.decode_request_header(&second).unwrap();
        assert_eq!(h2.materialise(Some(&mut dec)).unwrap(), req);
        assert_eq!((enc.defs(), enc.refs()), (2, 2));
    }

    #[test]
    fn sigref_without_table_is_rejected_not_guessed() {
        let codec = RmiCodec::new();
        let mut enc = SigTable::new();
        let req = Request::Discover {
            class: "Stock".into(),
        };
        let mut define = Vec::new();
        codec
            .encode_request_into(1, TraceContext::NONE, &req, Some(&mut enc), &mut define)
            .unwrap();
        let mut reffed = Vec::new();
        codec
            .encode_request_into(2, TraceContext::NONE, &req, Some(&mut enc), &mut reffed)
            .unwrap();
        // The define frame is self-contained: stateless decode works.
        assert_eq!(codec.decode_request(&define).unwrap().2, req);
        // The reference frame is only meaningful against the link table.
        let err = codec.decode_request(&reffed).unwrap_err();
        assert!(err.0.contains("sigref"), "got: {err}");
    }

    #[test]
    fn header_decode_matches_full_decode() {
        let codec = RmiCodec::new();
        for (i, req) in testdata::sample_requests().into_iter().enumerate() {
            let ctx = TraceContext {
                trace_id: i as u64,
                span_id: 1,
                parent_span_id: 0,
            };
            let bytes = codec.encode_request(i as u64, ctx, &req).unwrap();
            let (id, fctx, full) = codec.decode_request(&bytes).unwrap();
            let h = codec.decode_request_header(&bytes).unwrap();
            assert_eq!((h.msg_id, h.ctx), (id, fctx));
            assert_eq!(h.kind, RequestKind::of(&req));
            assert_eq!(h.materialise(None).unwrap(), full);
        }
    }

    #[test]
    fn version_4_replies_decode_with_object_version_zero() {
        let codec = RmiCodec::new();
        let ctx = TraceContext {
            trace_id: 5,
            span_id: 6,
            parent_span_id: 1,
        };
        let v6 = codec
            .encode_reply(9, ctx, 77, &Reply::Value(WireValue::Int(3)))
            .unwrap();
        // Re-create the pre-caching frame: version byte 4, no object
        // version field (drop bytes 37..45).
        let mut v4 = v6.clone();
        v4[4] = 4;
        v4.drain(37..45);
        let (id, back_ctx, ver, reply) = codec.decode_reply(&v4).unwrap();
        assert_eq!(id, 9);
        assert_eq!(back_ctx, ctx);
        assert_eq!(ver, 0, "pre-caching peers imply version 0");
        assert_eq!(reply, Reply::Value(WireValue::Int(3)));
    }
}
