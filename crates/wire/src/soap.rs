//! SOAP-like codec: a verbose, self-describing XML text protocol.
//!
//! Faithful to the family's cost signature: an enveloped, attribute-heavy
//! textual encoding parsed back from characters (not memcpy'd), with the
//! highest per-message processing overhead of the three codecs. Floats are
//! printed human-readably but carry a `bits` attribute so round-trips are
//! exact.

use crate::{Protocol, Reply, Request, TraceContext, WireError, WireValue};
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Tiny XML subset: elements, attributes, text, entity escapes.
// ---------------------------------------------------------------------

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq)]
struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Elem(Element),
    Text(String),
}

impl Element {
    fn attr(&self, name: &str) -> Result<&str, WireError> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| WireError::new(format!("<{}> missing attribute {name}", self.name)))
    }

    fn attr_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, WireError> {
        self.attr(name)?
            .parse()
            .map_err(|_| WireError::new(format!("<{}> bad {name} attribute", self.name)))
    }

    fn elems(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Elem(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    fn first_elem(&self) -> Result<&Element, WireError> {
        self.elems()
            .next()
            .ok_or_else(|| WireError::new(format!("<{}> missing child element", self.name)))
    }

    fn child(&self, name: &str) -> Result<&Element, WireError> {
        self.elems()
            .find(|e| e.name == name)
            .ok_or_else(|| WireError::new(format!("<{}> missing child <{name}>", self.name)))
    }

    fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> WireError {
        WireError::new(format!("xml: {msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), WireError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn name(&mut self) -> Result<String, WireError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b':' || c == b'_' || c == b'-')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn unescape_run(&mut self, stop: &[u8]) -> Result<String, WireError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None => break,
                Some(c) if stop.contains(&c) => break,
                Some(b'&') => {
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b';') {
                        self.pos += 1;
                    }
                    let entity = &self.input[start..self.pos];
                    self.eat(b';')?;
                    out.push(match entity {
                        b"amp" => '&',
                        b"lt" => '<',
                        b"gt" => '>',
                        b"quot" => '"',
                        b"apos" => '\'',
                        _ => return Err(self.err("unknown entity")),
                    });
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.input.len() && (self.input[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.input[start..self.pos]));
                }
            }
        }
        Ok(out)
    }

    /// Parse the next element (skipping a leading `<?xml …?>` declaration).
    fn document(&mut self) -> Result<Element, WireError> {
        self.skip_ws();
        if self.input[self.pos..].starts_with(b"<?") {
            while self.peek().is_some_and(|c| c != b'>') {
                self.pos += 1;
            }
            self.eat(b'>')?;
        }
        self.skip_ws();
        self.element()
    }

    fn element(&mut self) -> Result<Element, WireError> {
        self.eat(b'<')?;
        let name = self.name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.eat(b'>')?;
                    return Ok(Element {
                        name,
                        attrs,
                        children: Vec::new(),
                    });
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    self.eat(b'=')?;
                    self.skip_ws();
                    self.eat(b'"')?;
                    let value = self.unescape_run(b"\"")?;
                    self.eat(b'"')?;
                    attrs.push((key, value));
                }
                None => return Err(self.err("unterminated tag")),
            }
        }
        // Children until matching close tag.
        let mut children = Vec::new();
        loop {
            if self.input[self.pos..].starts_with(b"</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return Err(self.err(&format!("mismatched </{close}> for <{name}>")));
                }
                self.skip_ws();
                self.eat(b'>')?;
                return Ok(Element {
                    name,
                    attrs,
                    children,
                });
            }
            match self.peek() {
                Some(b'<') => children.push(Node::Elem(self.element()?)),
                Some(_) => {
                    let text = self.unescape_run(b"<")?;
                    children.push(Node::Text(text));
                }
                None => return Err(self.err(&format!("unterminated <{name}>"))),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Value <-> XML
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &WireValue) {
    match v {
        WireValue::Null => out.push_str("<v t=\"null\"/>"),
        WireValue::Bool(b) => {
            let _ = write!(out, "<v t=\"boolean\">{b}</v>");
        }
        WireValue::Int(i) => {
            let _ = write!(out, "<v t=\"int\">{i}</v>");
        }
        WireValue::Long(i) => {
            let _ = write!(out, "<v t=\"long\">{i}</v>");
        }
        WireValue::Float(x) => {
            let _ = write!(out, "<v t=\"float\" bits=\"{:08x}\">{x}</v>", x.to_bits());
        }
        WireValue::Double(x) => {
            let _ = write!(out, "<v t=\"double\" bits=\"{:016x}\">{x}</v>", x.to_bits());
        }
        WireValue::Str(s) => {
            out.push_str("<v t=\"string\">");
            escape(s, out);
            out.push_str("</v>");
        }
        WireValue::Remote {
            node,
            object,
            class,
        } => {
            let _ = write!(
                out,
                "<v t=\"ref\" node=\"{node}\" object=\"{object}\" class=\""
            );
            escape(class, out);
            out.push_str("\"/>");
        }
        WireValue::Array(items) => {
            out.push_str("<v t=\"array\">");
            for item in items {
                write_value(out, item);
            }
            out.push_str("</v>");
        }
        WireValue::ObjectState { class, fields } => {
            out.push_str("<v t=\"state\" class=\"");
            escape(class, out);
            out.push_str("\">");
            for f in fields {
                write_value(out, f);
            }
            out.push_str("</v>");
        }
    }
}

fn read_value(e: &Element) -> Result<WireValue, WireError> {
    if e.name != "v" {
        return Err(WireError::new(format!("expected <v>, got <{}>", e.name)));
    }
    Ok(match e.attr("t")? {
        "null" => WireValue::Null,
        "boolean" => WireValue::Bool(e.text() == "true"),
        "int" => WireValue::Int(e.text().parse().map_err(|_| WireError::new("bad int"))?),
        "long" => WireValue::Long(e.text().parse().map_err(|_| WireError::new("bad long"))?),
        "float" => {
            let bits = u32::from_str_radix(e.attr("bits")?, 16)
                .map_err(|_| WireError::new("bad float bits"))?;
            WireValue::Float(f32::from_bits(bits))
        }
        "double" => {
            let bits = u64::from_str_radix(e.attr("bits")?, 16)
                .map_err(|_| WireError::new("bad double bits"))?;
            WireValue::Double(f64::from_bits(bits))
        }
        "string" => WireValue::Str(e.text()),
        "ref" => WireValue::Remote {
            node: e.attr_parsed("node")?,
            object: e.attr_parsed("object")?,
            class: e.attr("class")?.to_owned(),
        },
        "array" => WireValue::Array(e.elems().map(read_value).collect::<Result<_, _>>()?),
        "state" => WireValue::ObjectState {
            class: e.attr("class")?.to_owned(),
            fields: e.elems().map(read_value).collect::<Result<_, _>>()?,
        },
        t => return Err(WireError::new(format!("unknown value type {t}"))),
    })
}

/// Build an envelope. `objver` is `Some` only for replies, which piggyback
/// the served object's property version as a `<rafda:objver>` header
/// element; requests never carry one.
fn envelope(id: u64, ctx: TraceContext, objver: Option<u64>, body: &str) -> String {
    let objver = match objver {
        Some(v) => format!("<rafda:objver>{v}</rafda:objver>"),
        None => String::new(),
    };
    format!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\" \
         xmlns:rafda=\"http://rafda.dcs.st-and.ac.uk/ns/2003\">\n\
         <soap:Header><rafda:mid>{id}</rafda:mid>\
         <rafda:trace id=\"{}\" span=\"{}\" parent=\"{}\"/>{objver}</soap:Header>\n\
         <soap:Body>{body}</soap:Body>\n</soap:Envelope>\n",
        ctx.trace_id, ctx.span_id, ctx.parent_span_id
    )
}

fn unwrap_envelope(xml: &str) -> Result<(u64, TraceContext, u64, Element), WireError> {
    let doc = Parser::new(xml).document()?;
    if doc.name != "soap:Envelope" {
        return Err(WireError::new(format!(
            "expected <soap:Envelope>, got <{}>",
            doc.name
        )));
    }
    // The message id, trace context and object property version ride in an
    // optional header block; pre-id peers (no <soap:Header>) decode as id 0,
    // pre-tracing peers (no <rafda:trace>) as `TraceContext::NONE`, and
    // pre-caching peers (no <rafda:objver>) as version 0.
    let (id, ctx, objver) = match doc.child("soap:Header") {
        Ok(header) => {
            let id = header
                .child("rafda:mid")?
                .text()
                .trim()
                .parse()
                .map_err(|_| WireError::new("bad rafda:mid"))?;
            let ctx = match header.child("rafda:trace") {
                Ok(trace) => TraceContext {
                    trace_id: trace.attr_parsed("id")?,
                    span_id: trace.attr_parsed("span")?,
                    parent_span_id: trace.attr_parsed("parent")?,
                },
                Err(_) => TraceContext::NONE,
            };
            let objver = match header.child("rafda:objver") {
                Ok(v) => v
                    .text()
                    .trim()
                    .parse()
                    .map_err(|_| WireError::new("bad rafda:objver"))?,
                Err(_) => 0,
            };
            (id, ctx, objver)
        }
        Err(_) => (0, TraceContext::NONE, 0),
    };
    Ok((
        id,
        ctx,
        objver,
        doc.child("soap:Body")?.first_elem()?.clone(),
    ))
}

// ---------------------------------------------------------------------
// Request / Reply <-> XML (body elements, recursive so batches can nest)
// ---------------------------------------------------------------------

fn write_request_elem(b: &mut String, req: &Request) {
    match req {
        Request::Call {
            object,
            method,
            args,
        } => {
            let _ = write!(b, "<rafda:call object=\"{object}\" method=\"");
            escape(method, b);
            b.push_str("\">");
            for a in args {
                write_value(b, a);
            }
            b.push_str("</rafda:call>");
        }
        Request::Create { class, ctor, args } => {
            b.push_str("<rafda:create class=\"");
            escape(class, b);
            let _ = write!(b, "\" ctor=\"{ctor}\">");
            for a in args {
                write_value(b, a);
            }
            b.push_str("</rafda:create>");
        }
        Request::Discover { class } => {
            b.push_str("<rafda:discover class=\"");
            escape(class, b);
            b.push_str("\"/>");
        }
        Request::Fetch { object } => {
            let _ = write!(b, "<rafda:fetch object=\"{object}\"/>");
        }
        Request::Install { state, source } => {
            match source {
                Some((n, o)) => {
                    let _ = write!(b, "<rafda:install srcnode=\"{n}\" srcobject=\"{o}\">");
                }
                None => b.push_str("<rafda:install>"),
            }
            write_value(b, state);
            b.push_str("</rafda:install>");
        }
        Request::Forward {
            object,
            to_node,
            to_object,
        } => {
            let _ = write!(
                b,
                "<rafda:forward object=\"{object}\" tonode=\"{to_node}\" toobject=\"{to_object}\"/>"
            );
        }
        Request::ReplicaSync {
            object,
            version,
            state,
        } => {
            let _ = write!(
                b,
                "<rafda:replicasync object=\"{object}\" version=\"{version}\">"
            );
            write_value(b, state);
            b.push_str("</rafda:replicasync>");
        }
        Request::Promote { node, object } => {
            let _ = write!(b, "<rafda:promote node=\"{node}\" object=\"{object}\"/>");
        }
        Request::Batch(ops) => {
            b.push_str("<rafda:batch>");
            for op in ops {
                write_request_elem(b, op);
            }
            b.push_str("</rafda:batch>");
        }
    }
}

fn read_request_elem(e: &Element) -> Result<Request, WireError> {
    Ok(match e.name.as_str() {
        "rafda:call" => Request::Call {
            object: e.attr_parsed("object")?,
            method: e.attr("method")?.to_owned(),
            args: e.elems().map(read_value).collect::<Result<_, _>>()?,
        },
        "rafda:create" => Request::Create {
            class: e.attr("class")?.to_owned(),
            ctor: e.attr_parsed("ctor")?,
            args: e.elems().map(read_value).collect::<Result<_, _>>()?,
        },
        "rafda:discover" => Request::Discover {
            class: e.attr("class")?.to_owned(),
        },
        "rafda:fetch" => Request::Fetch {
            object: e.attr_parsed("object")?,
        },
        "rafda:install" => {
            let source = match (e.attr("srcnode"), e.attr("srcobject")) {
                (Ok(n), Ok(o)) => Some((
                    n.parse().map_err(|_| WireError::new("bad srcnode"))?,
                    o.parse().map_err(|_| WireError::new("bad srcobject"))?,
                )),
                _ => None,
            };
            Request::Install {
                state: read_value(e.first_elem()?)?,
                source,
            }
        }
        "rafda:forward" => Request::Forward {
            object: e.attr_parsed("object")?,
            to_node: e.attr_parsed("tonode")?,
            to_object: e.attr_parsed("toobject")?,
        },
        "rafda:replicasync" => Request::ReplicaSync {
            object: e.attr_parsed("object")?,
            version: e.attr_parsed("version")?,
            state: read_value(e.first_elem()?)?,
        },
        "rafda:promote" => Request::Promote {
            node: e.attr_parsed("node")?,
            object: e.attr_parsed("object")?,
        },
        "rafda:batch" => {
            Request::Batch(e.elems().map(read_request_elem).collect::<Result<_, _>>()?)
        }
        name => return Err(WireError::new(format!("unknown request <{name}>"))),
    })
}

fn write_reply_elem(b: &mut String, reply: &Reply) {
    match reply {
        Reply::Value(v) => {
            b.push_str("<rafda:result>");
            write_value(b, v);
            b.push_str("</rafda:result>");
        }
        Reply::Exception { class, fields } => {
            b.push_str("<rafda:exception class=\"");
            escape(class, b);
            b.push_str("\">");
            for f in fields {
                write_value(b, f);
            }
            b.push_str("</rafda:exception>");
        }
        Reply::Fault(msg) => {
            b.push_str("<soap:Fault><faultstring>");
            escape(msg, b);
            b.push_str("</faultstring></soap:Fault>");
        }
        Reply::Batch(ops) => {
            b.push_str("<rafda:batchresult>");
            for (version, reply) in ops {
                let _ = write!(b, "<rafda:op objver=\"{version}\">");
                write_reply_elem(b, reply);
                b.push_str("</rafda:op>");
            }
            b.push_str("</rafda:batchresult>");
        }
    }
}

fn read_reply_elem(e: &Element) -> Result<Reply, WireError> {
    Ok(match e.name.as_str() {
        "rafda:result" => Reply::Value(read_value(e.first_elem()?)?),
        "rafda:exception" => Reply::Exception {
            class: e.attr("class")?.to_owned(),
            fields: e.elems().map(read_value).collect::<Result<_, _>>()?,
        },
        "soap:Fault" => Reply::Fault(e.child("faultstring")?.text()),
        "rafda:batchresult" => {
            let mut ops = Vec::new();
            for op in e.elems() {
                if op.name != "rafda:op" {
                    return Err(WireError::new(format!(
                        "expected <rafda:op>, got <{}>",
                        op.name
                    )));
                }
                ops.push((
                    op.attr_parsed("objver")?,
                    read_reply_elem(op.first_elem()?)?,
                ));
            }
            Reply::Batch(ops)
        }
        name => return Err(WireError::new(format!("unknown reply <{name}>"))),
    })
}

// ---------------------------------------------------------------------
// The codec
// ---------------------------------------------------------------------

/// The SOAP-like protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoapCodec;

impl SoapCodec {
    /// Create the codec.
    pub fn new() -> Self {
        SoapCodec
    }
}

impl Protocol for SoapCodec {
    fn name(&self) -> &'static str {
        "SOAP"
    }

    fn encode_request(&self, id: u64, ctx: TraceContext, req: &Request) -> Vec<u8> {
        let mut b = String::new();
        write_request_elem(&mut b, req);
        envelope(id, ctx, None, &b).into_bytes()
    }

    fn decode_request(&self, bytes: &[u8]) -> Result<(u64, TraceContext, Request), WireError> {
        let xml = std::str::from_utf8(bytes).map_err(|_| WireError::new("invalid utf-8"))?;
        let (id, ctx, _, e) = unwrap_envelope(xml)?;
        Ok((id, ctx, read_request_elem(&e)?))
    }

    fn encode_reply(&self, id: u64, ctx: TraceContext, obj_version: u64, reply: &Reply) -> Vec<u8> {
        let mut b = String::new();
        write_reply_elem(&mut b, reply);
        envelope(id, ctx, Some(obj_version), &b).into_bytes()
    }

    fn decode_reply(&self, bytes: &[u8]) -> Result<(u64, TraceContext, u64, Reply), WireError> {
        let xml = std::str::from_utf8(bytes).map_err(|_| WireError::new("invalid utf-8"))?;
        let (id, ctx, obj_version, e) = unwrap_envelope(xml)?;
        Ok((id, ctx, obj_version, read_reply_elem(&e)?))
    }

    /// XML assembly + parse dominated 2003 SOAP stacks: ~400 µs per message.
    fn overhead_ns(&self) -> u64 {
        400_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata;

    #[test]
    fn roundtrips_all_samples() {
        testdata::assert_roundtrips(&SoapCodec::new());
    }

    #[test]
    fn xml_parser_handles_nesting_attrs_and_entities() {
        let xml =
            r#"<?xml version="1.0"?><a x="1 &amp; 2"><b/>text &lt;here&gt;<c y="z">inner</c></a>"#;
        let e = Parser::new(xml).document().unwrap();
        assert_eq!(e.name, "a");
        assert_eq!(e.attr("x").unwrap(), "1 & 2");
        assert_eq!(e.elems().count(), 2);
        assert_eq!(e.text(), "text <here>");
        assert_eq!(e.child("c").unwrap().text(), "inner");
    }

    #[test]
    fn mismatched_close_tag_rejected() {
        assert!(Parser::new("<a><b></a></b>").document().is_err());
        assert!(Parser::new("<a>").document().is_err());
    }

    #[test]
    fn string_content_with_xml_metacharacters_roundtrips() {
        let codec = SoapCodec::new();
        let reply = Reply::Value(WireValue::Str("<v t=\"string\">&amp;</v>".into()));
        let bytes = codec.encode_reply(11, TraceContext::NONE, 4, &reply);
        assert_eq!(
            codec.decode_reply(&bytes).unwrap(),
            (11, TraceContext::NONE, 4, reply)
        );
    }

    #[test]
    fn nan_and_negative_zero_roundtrip_via_bits() {
        let codec = SoapCodec::new();
        for v in [
            WireValue::Double(f64::NAN),
            WireValue::Double(-0.0),
            WireValue::Float(f32::INFINITY),
        ] {
            let bytes = codec.encode_reply(0, TraceContext::NONE, 0, &Reply::Value(v.clone()));
            let (_, _, _, back) = codec.decode_reply(&bytes).unwrap();
            match (back, v) {
                (Reply::Value(WireValue::Double(a)), WireValue::Double(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                (Reply::Value(WireValue::Float(a)), WireValue::Float(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn envelope_is_present() {
        let ctx = TraceContext {
            trace_id: 3,
            span_id: 8,
            parent_span_id: 2,
        };
        let bytes = SoapCodec::new().encode_request(42, ctx, &Request::Fetch { object: 1 });
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.contains("soap:Envelope"));
        assert!(s.contains("soap:Body"));
        assert!(s.contains(
            "<soap:Header><rafda:mid>42</rafda:mid>\
             <rafda:trace id=\"3\" span=\"8\" parent=\"2\"/></soap:Header>"
        ));
        assert!(s.starts_with("<?xml"));
    }

    #[test]
    fn headerless_envelope_decodes_as_id_zero() {
        // A frame from a pre-id peer: no <soap:Header> at all.
        let xml = "<?xml version=\"1.0\"?>\n\
                   <soap:Envelope xmlns:soap=\"x\" xmlns:rafda=\"y\">\n\
                   <soap:Body><rafda:fetch object=\"5\"/></soap:Body>\n</soap:Envelope>\n";
        let (id, ctx, req) = SoapCodec::new().decode_request(xml.as_bytes()).unwrap();
        assert_eq!(id, 0);
        assert_eq!(ctx, TraceContext::NONE);
        assert_eq!(req, Request::Fetch { object: 5 });
    }

    #[test]
    fn traceless_header_decodes_as_none_context() {
        // A frame from a message-id-era peer: header with mid but no
        // <rafda:trace>.
        let xml = "<?xml version=\"1.0\"?>\n\
                   <soap:Envelope xmlns:soap=\"x\" xmlns:rafda=\"y\">\n\
                   <soap:Header><rafda:mid>6</rafda:mid></soap:Header>\n\
                   <soap:Body><rafda:fetch object=\"5\"/></soap:Body>\n</soap:Envelope>\n";
        let (id, ctx, req) = SoapCodec::new().decode_request(xml.as_bytes()).unwrap();
        assert_eq!(id, 6);
        assert_eq!(ctx, TraceContext::NONE);
        assert_eq!(req, Request::Fetch { object: 5 });
    }

    #[test]
    fn reply_header_carries_object_version() {
        let bytes = SoapCodec::new().encode_reply(
            7,
            TraceContext::NONE,
            19,
            &Reply::Value(WireValue::Int(1)),
        );
        let s = String::from_utf8(bytes.clone()).unwrap();
        assert!(s.contains("<rafda:objver>19</rafda:objver>"), "{s}");
        let (_, _, ver, _) = SoapCodec::new().decode_reply(&bytes).unwrap();
        assert_eq!(ver, 19);
    }

    #[test]
    fn objverless_reply_decodes_as_version_zero() {
        // A reply from a pre-caching peer: header with mid + trace but no
        // <rafda:objver>.
        let xml = "<?xml version=\"1.0\"?>\n\
                   <soap:Envelope xmlns:soap=\"x\" xmlns:rafda=\"y\">\n\
                   <soap:Header><rafda:mid>6</rafda:mid>\
                   <rafda:trace id=\"1\" span=\"2\" parent=\"0\"/></soap:Header>\n\
                   <soap:Body><rafda:result><v t=\"int\">9</v></rafda:result></soap:Body>\n\
                   </soap:Envelope>\n";
        let (id, _, ver, reply) = SoapCodec::new().decode_reply(xml.as_bytes()).unwrap();
        assert_eq!(id, 6);
        assert_eq!(ver, 0, "pre-caching peers imply version 0");
        assert_eq!(reply, Reply::Value(WireValue::Int(9)));
    }
}
