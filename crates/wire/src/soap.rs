//! SOAP-like codec: a verbose, self-describing XML text protocol.
//!
//! Faithful to the family's cost signature: an enveloped, attribute-heavy
//! textual encoding parsed back from characters (not memcpy'd), with the
//! highest per-message processing overhead of the three codecs. Floats are
//! printed human-readably but carry a `bits` attribute so round-trips are
//! exact.

use crate::frame::{FrameHeader, Payload, RequestKind};
use crate::rmi::Sigs;
use crate::sig::{SigEnc, SigTable};
use crate::{Protocol, Reply, Request, TraceContext, WireError, WireValue};
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Tiny XML subset: elements, attributes, text, entity escapes.
// ---------------------------------------------------------------------

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq)]
struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Elem(Element),
    Text(String),
}

impl Element {
    fn attr(&self, name: &str) -> Result<&str, WireError> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| WireError::new(format!("<{}> missing attribute {name}", self.name)))
    }

    fn attr_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, WireError> {
        self.attr(name)?
            .parse()
            .map_err(|_| WireError::new(format!("<{}> bad {name} attribute", self.name)))
    }

    fn elems(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Elem(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    fn first_elem(&self) -> Result<&Element, WireError> {
        self.elems()
            .next()
            .ok_or_else(|| WireError::new(format!("<{}> missing child element", self.name)))
    }

    fn child(&self, name: &str) -> Result<&Element, WireError> {
        self.elems()
            .find(|e| e.name == name)
            .ok_or_else(|| WireError::new(format!("<{}> missing child <{name}>", self.name)))
    }

    fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
}

/// Write a signature-position attribute (` name="value"`, leading space).
/// With a negotiated table, a previously-seen signature is replaced by a
/// ` rafda:sigref="N"` reference; first use stays inline and interns on
/// both ends (define-on-first-use, mirroring the binary codecs' marker).
fn sig_attr_out(out: &mut String, name: &str, value: &str, sigs: Sigs<'_, '_>) {
    if let Some(t) = sigs.as_deref_mut() {
        if let SigEnc::Ref(id) = t.encode_sig(value) {
            let _ = write!(out, " rafda:sigref=\"{id}\"");
            return;
        }
    }
    let _ = write!(out, " {name}=\"");
    escape(value, out);
    out.push('"');
}

/// Read a signature-position attribute: the inline form interns (when a
/// table is present), the `rafda:sigref` form resolves against the table.
fn sig_attr(e: &Element, name: &str, sigs: Sigs<'_, '_>) -> Result<String, WireError> {
    if let Ok(s) = e.attr(name) {
        if let Some(t) = sigs.as_deref_mut() {
            t.intern(s);
        }
        return Ok(s.to_owned());
    }
    if let Ok(id) = e.attr("rafda:sigref") {
        let id: u32 = id
            .parse()
            .map_err(|_| WireError::new(format!("<{}> bad rafda:sigref", e.name)))?;
        return match sigs.as_deref_mut() {
            Some(t) => Ok(t.resolve(id)?.to_owned()),
            None => Err(WireError::new(format!(
                "sigref {id} without a negotiated table"
            ))),
        };
    }
    Err(WireError::new(format!(
        "<{}> missing attribute {name}",
        e.name
    )))
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> WireError {
        WireError::new(format!("xml: {msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), WireError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn name(&mut self) -> Result<String, WireError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b':' || c == b'_' || c == b'-')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn unescape_run(&mut self, stop: &[u8]) -> Result<String, WireError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None => break,
                Some(c) if stop.contains(&c) => break,
                Some(b'&') => {
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b';') {
                        self.pos += 1;
                    }
                    let entity = &self.input[start..self.pos];
                    self.eat(b';')?;
                    out.push(match entity {
                        b"amp" => '&',
                        b"lt" => '<',
                        b"gt" => '>',
                        b"quot" => '"',
                        b"apos" => '\'',
                        _ => return Err(self.err("unknown entity")),
                    });
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.input.len() && (self.input[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.input[start..self.pos]));
                }
            }
        }
        Ok(out)
    }

    /// Parse the next element (skipping a leading `<?xml …?>` declaration).
    /// The decode paths now go through `scan_envelope`; the full-document
    /// DOM parse remains for the parser's own tests.
    #[cfg(test)]
    fn document(&mut self) -> Result<Element, WireError> {
        self.skip_ws();
        if self.input[self.pos..].starts_with(b"<?") {
            while self.peek().is_some_and(|c| c != b'>') {
                self.pos += 1;
            }
            self.eat(b'>')?;
        }
        self.skip_ws();
        self.element()
    }

    fn element(&mut self) -> Result<Element, WireError> {
        self.eat(b'<')?;
        let name = self.name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.eat(b'>')?;
                    return Ok(Element {
                        name,
                        attrs,
                        children: Vec::new(),
                    });
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    self.eat(b'=')?;
                    self.skip_ws();
                    self.eat(b'"')?;
                    let value = self.unescape_run(b"\"")?;
                    self.eat(b'"')?;
                    attrs.push((key, value));
                }
                None => return Err(self.err("unterminated tag")),
            }
        }
        // Children until matching close tag.
        let mut children = Vec::new();
        loop {
            if self.input[self.pos..].starts_with(b"</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return Err(self.err(&format!("mismatched </{close}> for <{name}>")));
                }
                self.skip_ws();
                self.eat(b'>')?;
                return Ok(Element {
                    name,
                    attrs,
                    children,
                });
            }
            match self.peek() {
                Some(b'<') => children.push(Node::Elem(self.element()?)),
                Some(_) => {
                    let text = self.unescape_run(b"<")?;
                    children.push(Node::Text(text));
                }
                None => return Err(self.err(&format!("unterminated <{name}>"))),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Value <-> XML
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &WireValue, sigs: Sigs<'_, '_>) {
    match v {
        WireValue::Null => out.push_str("<v t=\"null\"/>"),
        WireValue::Bool(b) => {
            let _ = write!(out, "<v t=\"boolean\">{b}</v>");
        }
        WireValue::Int(i) => {
            let _ = write!(out, "<v t=\"int\">{i}</v>");
        }
        WireValue::Long(i) => {
            let _ = write!(out, "<v t=\"long\">{i}</v>");
        }
        WireValue::Float(x) => {
            let _ = write!(out, "<v t=\"float\" bits=\"{:08x}\">{x}</v>", x.to_bits());
        }
        WireValue::Double(x) => {
            let _ = write!(out, "<v t=\"double\" bits=\"{:016x}\">{x}</v>", x.to_bits());
        }
        WireValue::Str(s) => {
            out.push_str("<v t=\"string\">");
            escape(s, out);
            out.push_str("</v>");
        }
        WireValue::Remote {
            node,
            object,
            class,
        } => {
            let _ = write!(out, "<v t=\"ref\" node=\"{node}\" object=\"{object}\"");
            sig_attr_out(out, "class", class, sigs);
            out.push_str("/>");
        }
        WireValue::Array(items) => {
            out.push_str("<v t=\"array\">");
            for item in items {
                write_value(out, item, sigs);
            }
            out.push_str("</v>");
        }
        WireValue::ObjectState { class, fields } => {
            out.push_str("<v t=\"state\"");
            sig_attr_out(out, "class", class, sigs);
            out.push('>');
            for f in fields {
                write_value(out, f, sigs);
            }
            out.push_str("</v>");
        }
    }
}

fn read_value(e: &Element, sigs: Sigs<'_, '_>) -> Result<WireValue, WireError> {
    if e.name != "v" {
        return Err(WireError::new(format!("expected <v>, got <{}>", e.name)));
    }
    Ok(match e.attr("t")? {
        "null" => WireValue::Null,
        "boolean" => WireValue::Bool(e.text() == "true"),
        "int" => WireValue::Int(e.text().parse().map_err(|_| WireError::new("bad int"))?),
        "long" => WireValue::Long(e.text().parse().map_err(|_| WireError::new("bad long"))?),
        "float" => {
            let bits = u32::from_str_radix(e.attr("bits")?, 16)
                .map_err(|_| WireError::new("bad float bits"))?;
            WireValue::Float(f32::from_bits(bits))
        }
        "double" => {
            let bits = u64::from_str_radix(e.attr("bits")?, 16)
                .map_err(|_| WireError::new("bad double bits"))?;
            WireValue::Double(f64::from_bits(bits))
        }
        "string" => WireValue::Str(e.text()),
        "ref" => WireValue::Remote {
            node: e.attr_parsed("node")?,
            object: e.attr_parsed("object")?,
            class: sig_attr(e, "class", sigs)?,
        },
        "array" => WireValue::Array(
            e.elems()
                .map(|c| read_value(c, sigs))
                .collect::<Result<_, _>>()?,
        ),
        "state" => WireValue::ObjectState {
            class: sig_attr(e, "class", sigs)?,
            fields: e
                .elems()
                .map(|c| read_value(c, sigs))
                .collect::<Result<_, _>>()?,
        },
        t => return Err(WireError::new(format!("unknown value type {t}"))),
    })
}

/// Write an envelope around `body` into a reusable buffer. `objver` is
/// `Some` only for replies, which piggyback the served object's property
/// version as a `<rafda:objver>` header element; requests never carry one.
fn envelope_into(
    s: &mut String,
    id: u64,
    ctx: TraceContext,
    objver: Option<u64>,
    body: impl FnOnce(&mut String),
) {
    let _ = write!(
        s,
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\" \
         xmlns:rafda=\"http://rafda.dcs.st-and.ac.uk/ns/2003\">\n\
         <soap:Header><rafda:mid>{id}</rafda:mid>\
         <rafda:trace id=\"{}\" span=\"{}\" parent=\"{}\"/>",
        ctx.trace_id, ctx.span_id, ctx.parent_span_id
    );
    if let Some(v) = objver {
        let _ = write!(s, "<rafda:objver>{v}</rafda:objver>");
    }
    s.push_str("</soap:Header>\n<soap:Body>");
    body(s);
    s.push_str("</soap:Body>\n</soap:Envelope>\n");
}

/// Extract the message id, trace context and object property version from
/// a `<soap:Header>` block. Pre-tracing peers (no `<rafda:trace>`) decode
/// as `TraceContext::NONE`, pre-caching peers (no `<rafda:objver>`) as
/// version 0.
fn header_fields(header: &Element) -> Result<(u64, TraceContext, u64), WireError> {
    let id = header
        .child("rafda:mid")?
        .text()
        .trim()
        .parse()
        .map_err(|_| WireError::new("bad rafda:mid"))?;
    let ctx = match header.child("rafda:trace") {
        Ok(trace) => TraceContext {
            trace_id: trace.attr_parsed("id")?,
            span_id: trace.attr_parsed("span")?,
            parent_span_id: trace.attr_parsed("parent")?,
        },
        Err(_) => TraceContext::NONE,
    };
    let objver = match header.child("rafda:objver") {
        Ok(v) => v
            .text()
            .trim()
            .parse()
            .map_err(|_| WireError::new("bad rafda:objver"))?,
        Err(_) => 0,
    };
    Ok((id, ctx, objver))
}

/// Scan an envelope without parsing its body: the `<soap:Header>` block is
/// small and parsed as a DOM, but the `<soap:Body>` content — the bulk of
/// the frame — is located textually and returned as an unparsed slice.
/// This is safe because every `<` in attribute values and text content is
/// entity-escaped, so the literal `</soap:Body>` can only be the body's
/// own close tag. Pre-id peers (no `<soap:Header>`) decode as id 0.
fn scan_envelope(xml: &str) -> Result<(u64, TraceContext, u64, &str), WireError> {
    let mut p = Parser::new(xml);
    p.skip_ws();
    if p.input[p.pos..].starts_with(b"<?") {
        while p.peek().is_some_and(|c| c != b'>') {
            p.pos += 1;
        }
        p.eat(b'>')?;
    }
    p.skip_ws();
    p.eat(b'<')?;
    let name = p.name()?;
    if name != "soap:Envelope" {
        return Err(WireError::new(format!(
            "expected <soap:Envelope>, got <{name}>"
        )));
    }
    // Envelope open-tag attributes (the xmlns declarations).
    loop {
        p.skip_ws();
        match p.peek() {
            Some(b'/') => {
                return Err(WireError::new("<soap:Envelope> missing child <soap:Body>"));
            }
            Some(b'>') => {
                p.pos += 1;
                break;
            }
            Some(_) => {
                let _key = p.name()?;
                p.skip_ws();
                p.eat(b'=')?;
                p.skip_ws();
                p.eat(b'"')?;
                let _value = p.unescape_run(b"\"")?;
                p.eat(b'"')?;
            }
            None => return Err(p.err("unterminated tag")),
        }
    }
    // Envelope children: a small header DOM, the body slice, anything else
    // parsed and ignored (matching the DOM path's tolerance).
    let mut header: Option<Element> = None;
    let mut body: Option<&str> = None;
    loop {
        if p.input[p.pos..].starts_with(b"</") {
            p.pos += 2;
            let close = p.name()?;
            if close != "soap:Envelope" {
                return Err(p.err(&format!("mismatched </{close}> for <soap:Envelope>")));
            }
            p.skip_ws();
            p.eat(b'>')?;
            break;
        }
        match p.peek() {
            Some(b'<') => {
                let save = p.pos;
                p.pos += 1;
                let cname = p.name()?;
                if cname == "soap:Body" && body.is_none() {
                    loop {
                        p.skip_ws();
                        match p.peek() {
                            Some(b'/') => {
                                p.pos += 1;
                                p.eat(b'>')?;
                                body = Some("");
                                break;
                            }
                            Some(b'>') => {
                                p.pos += 1;
                                let start = p.pos;
                                let off = xml[start..]
                                    .find("</soap:Body>")
                                    .ok_or_else(|| p.err("unterminated <soap:Body>"))?;
                                body = Some(&xml[start..start + off]);
                                p.pos = start + off + "</soap:Body>".len();
                                break;
                            }
                            Some(_) => {
                                let _key = p.name()?;
                                p.skip_ws();
                                p.eat(b'=')?;
                                p.skip_ws();
                                p.eat(b'"')?;
                                let _value = p.unescape_run(b"\"")?;
                                p.eat(b'"')?;
                            }
                            None => return Err(p.err("unterminated tag")),
                        }
                    }
                } else {
                    p.pos = save;
                    let e = p.element()?;
                    if e.name == "soap:Header" && header.is_none() {
                        header = Some(e);
                    }
                }
            }
            Some(_) => {
                let _ = p.unescape_run(b"<")?;
            }
            None => return Err(p.err("unterminated <soap:Envelope>")),
        }
    }
    let body = body.ok_or_else(|| WireError::new("<soap:Envelope> missing child <soap:Body>"))?;
    let (id, ctx, objver) = match &header {
        Some(h) => header_fields(h)?,
        None => (0, TraceContext::NONE, 0),
    };
    Ok((id, ctx, objver, body))
}

/// Parse the first element of a body slice. Leading text is skipped (raw
/// `<` cannot occur in escaped text, so the first `<` opens an element).
fn first_body_elem(body: &str) -> Result<Element, WireError> {
    let i = body
        .find('<')
        .ok_or_else(|| WireError::new("<soap:Body> missing child element"))?;
    let mut p = Parser::new(body);
    p.pos = i;
    p.element()
}

/// Peek the request discriminant from an unparsed body slice.
fn body_kind(body: &str) -> Result<RequestKind, WireError> {
    let i = body
        .find('<')
        .ok_or_else(|| WireError::new("<soap:Body> missing child element"))?;
    let mut p = Parser::new(body);
    p.pos = i + 1;
    let name = p.name()?;
    Ok(match name.as_str() {
        "rafda:call" => RequestKind::Call,
        "rafda:create" => RequestKind::Create,
        "rafda:discover" => RequestKind::Discover,
        "rafda:fetch" => RequestKind::Fetch,
        "rafda:install" => RequestKind::Install,
        "rafda:forward" => RequestKind::Forward,
        "rafda:replicasync" => RequestKind::ReplicaSync,
        "rafda:promote" => RequestKind::Promote,
        "rafda:batch" => RequestKind::Batch,
        name => return Err(WireError::new(format!("unknown request <{name}>"))),
    })
}

/// Lazy-payload materialisation for the XML codec: parse the body slice
/// recorded by the header scan into an owned [`Request`].
pub(crate) fn materialise_body(body: &str, sigs: Sigs<'_, '_>) -> Result<Request, WireError> {
    read_request_elem(&first_body_elem(body)?, sigs)
}

// ---------------------------------------------------------------------
// Request / Reply <-> XML (body elements, recursive so batches can nest)
// ---------------------------------------------------------------------

fn write_request_elem(b: &mut String, req: &Request, sigs: Sigs<'_, '_>) {
    match req {
        Request::Call {
            object,
            method,
            args,
        } => {
            let _ = write!(b, "<rafda:call object=\"{object}\"");
            sig_attr_out(b, "method", method, sigs);
            b.push('>');
            for a in args {
                write_value(b, a, sigs);
            }
            b.push_str("</rafda:call>");
        }
        Request::Create { class, ctor, args } => {
            b.push_str("<rafda:create");
            sig_attr_out(b, "class", class, sigs);
            let _ = write!(b, " ctor=\"{ctor}\">");
            for a in args {
                write_value(b, a, sigs);
            }
            b.push_str("</rafda:create>");
        }
        Request::Discover { class } => {
            b.push_str("<rafda:discover");
            sig_attr_out(b, "class", class, sigs);
            b.push_str("/>");
        }
        Request::Fetch { object } => {
            let _ = write!(b, "<rafda:fetch object=\"{object}\"/>");
        }
        Request::Install { state, source } => {
            match source {
                Some((n, o)) => {
                    let _ = write!(b, "<rafda:install srcnode=\"{n}\" srcobject=\"{o}\">");
                }
                None => b.push_str("<rafda:install>"),
            }
            write_value(b, state, sigs);
            b.push_str("</rafda:install>");
        }
        Request::Forward {
            object,
            to_node,
            to_object,
        } => {
            let _ = write!(
                b,
                "<rafda:forward object=\"{object}\" tonode=\"{to_node}\" toobject=\"{to_object}\"/>"
            );
        }
        Request::ReplicaSync {
            object,
            version,
            state,
        } => {
            let _ = write!(
                b,
                "<rafda:replicasync object=\"{object}\" version=\"{version}\">"
            );
            write_value(b, state, sigs);
            b.push_str("</rafda:replicasync>");
        }
        Request::Promote { node, object } => {
            let _ = write!(b, "<rafda:promote node=\"{node}\" object=\"{object}\"/>");
        }
        Request::Batch(ops) => {
            b.push_str("<rafda:batch>");
            for op in ops {
                write_request_elem(b, op, sigs);
            }
            b.push_str("</rafda:batch>");
        }
    }
}

fn read_request_elem(e: &Element, sigs: Sigs<'_, '_>) -> Result<Request, WireError> {
    Ok(match e.name.as_str() {
        "rafda:call" => Request::Call {
            object: e.attr_parsed("object")?,
            method: sig_attr(e, "method", sigs)?,
            args: e
                .elems()
                .map(|c| read_value(c, sigs))
                .collect::<Result<_, _>>()?,
        },
        "rafda:create" => Request::Create {
            class: sig_attr(e, "class", sigs)?,
            ctor: e.attr_parsed("ctor")?,
            args: e
                .elems()
                .map(|c| read_value(c, sigs))
                .collect::<Result<_, _>>()?,
        },
        "rafda:discover" => Request::Discover {
            class: sig_attr(e, "class", sigs)?,
        },
        "rafda:fetch" => Request::Fetch {
            object: e.attr_parsed("object")?,
        },
        "rafda:install" => {
            let source = match (e.attr("srcnode"), e.attr("srcobject")) {
                (Ok(n), Ok(o)) => Some((
                    n.parse().map_err(|_| WireError::new("bad srcnode"))?,
                    o.parse().map_err(|_| WireError::new("bad srcobject"))?,
                )),
                _ => None,
            };
            Request::Install {
                state: read_value(e.first_elem()?, sigs)?,
                source,
            }
        }
        "rafda:forward" => Request::Forward {
            object: e.attr_parsed("object")?,
            to_node: e.attr_parsed("tonode")?,
            to_object: e.attr_parsed("toobject")?,
        },
        "rafda:replicasync" => Request::ReplicaSync {
            object: e.attr_parsed("object")?,
            version: e.attr_parsed("version")?,
            state: read_value(e.first_elem()?, sigs)?,
        },
        "rafda:promote" => Request::Promote {
            node: e.attr_parsed("node")?,
            object: e.attr_parsed("object")?,
        },
        "rafda:batch" => Request::Batch(
            e.elems()
                .map(|c| read_request_elem(c, sigs))
                .collect::<Result<_, _>>()?,
        ),
        name => return Err(WireError::new(format!("unknown request <{name}>"))),
    })
}

fn write_reply_elem(b: &mut String, reply: &Reply, sigs: Sigs<'_, '_>) {
    match reply {
        Reply::Value(v) => {
            b.push_str("<rafda:result>");
            write_value(b, v, sigs);
            b.push_str("</rafda:result>");
        }
        Reply::Exception { class, fields } => {
            b.push_str("<rafda:exception");
            sig_attr_out(b, "class", class, sigs);
            b.push('>');
            for f in fields {
                write_value(b, f, sigs);
            }
            b.push_str("</rafda:exception>");
        }
        Reply::Fault(msg) => {
            b.push_str("<soap:Fault><faultstring>");
            escape(msg, b);
            b.push_str("</faultstring></soap:Fault>");
        }
        Reply::Batch(ops) => {
            b.push_str("<rafda:batchresult>");
            for (version, reply) in ops {
                let _ = write!(b, "<rafda:op objver=\"{version}\">");
                write_reply_elem(b, reply, sigs);
                b.push_str("</rafda:op>");
            }
            b.push_str("</rafda:batchresult>");
        }
    }
}

fn read_reply_elem(e: &Element, sigs: Sigs<'_, '_>) -> Result<Reply, WireError> {
    Ok(match e.name.as_str() {
        "rafda:result" => Reply::Value(read_value(e.first_elem()?, sigs)?),
        "rafda:exception" => Reply::Exception {
            class: sig_attr(e, "class", sigs)?,
            fields: e
                .elems()
                .map(|c| read_value(c, sigs))
                .collect::<Result<_, _>>()?,
        },
        "soap:Fault" => Reply::Fault(e.child("faultstring")?.text()),
        "rafda:batchresult" => {
            let mut ops = Vec::new();
            for op in e.elems() {
                if op.name != "rafda:op" {
                    return Err(WireError::new(format!(
                        "expected <rafda:op>, got <{}>",
                        op.name
                    )));
                }
                ops.push((
                    op.attr_parsed("objver")?,
                    read_reply_elem(op.first_elem()?, sigs)?,
                ));
            }
            Reply::Batch(ops)
        }
        name => return Err(WireError::new(format!("unknown reply <{name}>"))),
    })
}

// ---------------------------------------------------------------------
// The codec
// ---------------------------------------------------------------------

/// The SOAP-like protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoapCodec;

impl SoapCodec {
    /// Create the codec.
    pub fn new() -> Self {
        SoapCodec
    }
}

/// Recycle a pooled byte buffer as an empty `String` (capacity kept).
fn take_string(out: &mut Vec<u8>) -> String {
    let mut buf = std::mem::take(out);
    buf.clear();
    String::from_utf8(buf).unwrap_or_default()
}

impl Protocol for SoapCodec {
    fn name(&self) -> &'static str {
        "SOAP"
    }

    fn encode_request_into(
        &self,
        id: u64,
        ctx: TraceContext,
        req: &Request,
        mut sigs: Option<&mut SigTable>,
        out: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        let mut s = take_string(out);
        envelope_into(&mut s, id, ctx, None, |b| {
            write_request_elem(b, req, &mut sigs);
        });
        *out = s.into_bytes();
        Ok(())
    }

    fn decode_request_header<'a>(&self, bytes: &'a [u8]) -> Result<FrameHeader<'a>, WireError> {
        let xml = std::str::from_utf8(bytes).map_err(|_| WireError::new("invalid utf-8"))?;
        let (msg_id, ctx, _, body) = scan_envelope(xml)?;
        let kind = body_kind(body)?;
        Ok(FrameHeader {
            msg_id,
            ctx,
            kind,
            payload: Payload::Xml { body },
        })
    }

    fn encode_reply_into(
        &self,
        id: u64,
        ctx: TraceContext,
        obj_version: u64,
        reply: &Reply,
        mut sigs: Option<&mut SigTable>,
        out: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        let mut s = take_string(out);
        envelope_into(&mut s, id, ctx, Some(obj_version), |b| {
            write_reply_elem(b, reply, &mut sigs);
        });
        *out = s.into_bytes();
        Ok(())
    }

    fn decode_reply_with(
        &self,
        bytes: &[u8],
        mut sigs: Option<&mut SigTable>,
    ) -> Result<(u64, TraceContext, u64, Reply), WireError> {
        let xml = std::str::from_utf8(bytes).map_err(|_| WireError::new("invalid utf-8"))?;
        let (id, ctx, obj_version, body) = scan_envelope(xml)?;
        let e = first_body_elem(body)?;
        Ok((id, ctx, obj_version, read_reply_elem(&e, &mut sigs)?))
    }

    /// XML assembly + parse dominated 2003 SOAP stacks: ~400 µs per message.
    fn overhead_ns(&self) -> u64 {
        400_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata;

    #[test]
    fn roundtrips_all_samples() {
        testdata::assert_roundtrips(&SoapCodec::new());
    }

    #[test]
    fn xml_parser_handles_nesting_attrs_and_entities() {
        let xml =
            r#"<?xml version="1.0"?><a x="1 &amp; 2"><b/>text &lt;here&gt;<c y="z">inner</c></a>"#;
        let e = Parser::new(xml).document().unwrap();
        assert_eq!(e.name, "a");
        assert_eq!(e.attr("x").unwrap(), "1 & 2");
        assert_eq!(e.elems().count(), 2);
        assert_eq!(e.text(), "text <here>");
        assert_eq!(e.child("c").unwrap().text(), "inner");
    }

    #[test]
    fn mismatched_close_tag_rejected() {
        assert!(Parser::new("<a><b></a></b>").document().is_err());
        assert!(Parser::new("<a>").document().is_err());
    }

    #[test]
    fn string_content_with_xml_metacharacters_roundtrips() {
        let codec = SoapCodec::new();
        let reply = Reply::Value(WireValue::Str("<v t=\"string\">&amp;</v>".into()));
        let bytes = codec
            .encode_reply(11, TraceContext::NONE, 4, &reply)
            .unwrap();
        assert_eq!(
            codec.decode_reply(&bytes).unwrap(),
            (11, TraceContext::NONE, 4, reply)
        );
    }

    #[test]
    fn nan_and_negative_zero_roundtrip_via_bits() {
        let codec = SoapCodec::new();
        for v in [
            WireValue::Double(f64::NAN),
            WireValue::Double(-0.0),
            WireValue::Float(f32::INFINITY),
        ] {
            let bytes = codec
                .encode_reply(0, TraceContext::NONE, 0, &Reply::Value(v.clone()))
                .unwrap();
            let (_, _, _, back) = codec.decode_reply(&bytes).unwrap();
            match (back, v) {
                (Reply::Value(WireValue::Double(a)), WireValue::Double(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                (Reply::Value(WireValue::Float(a)), WireValue::Float(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn envelope_is_present() {
        let ctx = TraceContext {
            trace_id: 3,
            span_id: 8,
            parent_span_id: 2,
        };
        let bytes = SoapCodec::new()
            .encode_request(42, ctx, &Request::Fetch { object: 1 })
            .unwrap();
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.contains("soap:Envelope"));
        assert!(s.contains("soap:Body"));
        assert!(s.contains(
            "<soap:Header><rafda:mid>42</rafda:mid>\
             <rafda:trace id=\"3\" span=\"8\" parent=\"2\"/></soap:Header>"
        ));
        assert!(s.starts_with("<?xml"));
    }

    #[test]
    fn headerless_envelope_decodes_as_id_zero() {
        // A frame from a pre-id peer: no <soap:Header> at all.
        let xml = "<?xml version=\"1.0\"?>\n\
                   <soap:Envelope xmlns:soap=\"x\" xmlns:rafda=\"y\">\n\
                   <soap:Body><rafda:fetch object=\"5\"/></soap:Body>\n</soap:Envelope>\n";
        let (id, ctx, req) = SoapCodec::new().decode_request(xml.as_bytes()).unwrap();
        assert_eq!(id, 0);
        assert_eq!(ctx, TraceContext::NONE);
        assert_eq!(req, Request::Fetch { object: 5 });
    }

    #[test]
    fn traceless_header_decodes_as_none_context() {
        // A frame from a message-id-era peer: header with mid but no
        // <rafda:trace>.
        let xml = "<?xml version=\"1.0\"?>\n\
                   <soap:Envelope xmlns:soap=\"x\" xmlns:rafda=\"y\">\n\
                   <soap:Header><rafda:mid>6</rafda:mid></soap:Header>\n\
                   <soap:Body><rafda:fetch object=\"5\"/></soap:Body>\n</soap:Envelope>\n";
        let (id, ctx, req) = SoapCodec::new().decode_request(xml.as_bytes()).unwrap();
        assert_eq!(id, 6);
        assert_eq!(ctx, TraceContext::NONE);
        assert_eq!(req, Request::Fetch { object: 5 });
    }

    #[test]
    fn reply_header_carries_object_version() {
        let bytes = SoapCodec::new()
            .encode_reply(7, TraceContext::NONE, 19, &Reply::Value(WireValue::Int(1)))
            .unwrap();
        let s = String::from_utf8(bytes.clone()).unwrap();
        assert!(s.contains("<rafda:objver>19</rafda:objver>"), "{s}");
        let (_, _, ver, _) = SoapCodec::new().decode_reply(&bytes).unwrap();
        assert_eq!(ver, 19);
    }

    #[test]
    fn sigref_attributes_roundtrip_and_shrink() {
        let codec = SoapCodec::new();
        let req = Request::Call {
            object: 4,
            method: "observe_price@17".into(),
            args: vec![WireValue::Remote {
                node: 1,
                object: 9,
                class: "StockMarket".into(),
            }],
        };
        let mut enc = SigTable::new();
        let mut dec = SigTable::new();
        let mut first = Vec::new();
        codec
            .encode_request_into(1, TraceContext::NONE, &req, Some(&mut enc), &mut first)
            .unwrap();
        let text = std::str::from_utf8(&first).unwrap();
        assert!(
            text.contains("method=\"observe_price@17\""),
            "first use is inline: {text}"
        );
        let h = codec.decode_request_header(&first).unwrap();
        assert_eq!((h.msg_id, h.kind), (1, RequestKind::Call));
        assert_eq!(h.materialise(Some(&mut dec)).unwrap(), req);

        let mut second = Vec::new();
        codec
            .encode_request_into(2, TraceContext::NONE, &req, Some(&mut enc), &mut second)
            .unwrap();
        let text2 = std::str::from_utf8(&second).unwrap();
        assert!(
            text2.contains("rafda:sigref=\"0\"") && text2.contains("rafda:sigref=\"1\""),
            "later uses are references: {text2}"
        );
        assert!(second.len() < first.len());
        let h2 = codec.decode_request_header(&second).unwrap();
        assert_eq!(h2.materialise(Some(&mut dec)).unwrap(), req);
        // Reference frames are meaningless without the link table.
        let err = codec.decode_request(&second).unwrap_err();
        assert!(err.0.contains("sigref"), "got: {err}");
    }

    #[test]
    fn header_scan_matches_full_decode() {
        let codec = SoapCodec::new();
        for (i, req) in testdata::sample_requests().into_iter().enumerate() {
            let ctx = TraceContext {
                trace_id: i as u64 + 1,
                span_id: 2,
                parent_span_id: 1,
            };
            let bytes = codec.encode_request(i as u64, ctx, &req).unwrap();
            let (id, fctx, full) = codec.decode_request(&bytes).unwrap();
            let h = codec.decode_request_header(&bytes).unwrap();
            assert_eq!((h.msg_id, h.ctx), (id, fctx));
            assert_eq!(h.materialise(None).unwrap(), full);
        }
    }

    #[test]
    fn objverless_reply_decodes_as_version_zero() {
        // A reply from a pre-caching peer: header with mid + trace but no
        // <rafda:objver>.
        let xml = "<?xml version=\"1.0\"?>\n\
                   <soap:Envelope xmlns:soap=\"x\" xmlns:rafda=\"y\">\n\
                   <soap:Header><rafda:mid>6</rafda:mid>\
                   <rafda:trace id=\"1\" span=\"2\" parent=\"0\"/></soap:Header>\n\
                   <soap:Body><rafda:result><v t=\"int\">9</v></rafda:result></soap:Body>\n\
                   </soap:Envelope>\n";
        let (id, _, ver, reply) = SoapCodec::new().decode_reply(xml.as_bytes()).unwrap();
        assert_eq!(id, 6);
        assert_eq!(ver, 0, "pre-caching peers imply version 0");
        assert_eq!(reply, Reply::Value(WireValue::Int(9)));
    }
}
