//! # rafda-wire
//!
//! Wire protocols for remote proxy calls.
//!
//! The paper's proxies come in protocol families: "various proxies
//! implementing the interface for a class provide alternative remote
//! versions, e.g. SOAP-based, RMI-based, CORBA-based" (Section 1), and the
//! whole point of the interface extraction is that these are
//! **interchangeable**. This crate provides three codecs with the cost
//! signatures of those families:
//!
//! | Codec | Modelled after | Shape |
//! |---|---|---|
//! | [`RmiCodec`] | Java RMI / JRMP | compact tagged binary |
//! | [`SoapCodec`] | SOAP 1.1 over HTTP | verbose self-describing XML text |
//! | [`CorbaCodec`] | CORBA GIOP/CDR | aligned binary, 4-byte padded |
//!
//! All three encode the same location-independent model: [`WireValue`],
//! [`Request`] and [`Reply`]. Object references travel as
//! [`WireValue::Remote`] descriptors; primitive data, strings and arrays
//! travel by value; object *state* (for migration and exception
//! propagation) travels as [`WireValue::ObjectState`].
//!
//! Every codec round-trips exactly (`decode(encode(x)) == x`), which the
//! property-based tests verify; the encoded **size** and the per-call
//! processing overhead differ, which experiment E5 measures.

#![warn(missing_docs)]

pub mod binary;
pub mod corba;
pub mod frame;
pub mod rmi;
pub mod sig;
pub mod soap;

pub use corba::CorbaCodec;
pub use frame::{FrameHeader, RequestKind};
pub use rafda_telemetry::TraceContext;
pub use rmi::RmiCodec;
pub use sig::{InternOutcome, SigEnc, SigTable};
pub use soap::SoapCodec;

use std::fmt;

/// A location-independent value as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// The `null` reference.
    Null,
    /// A boolean, by value.
    Bool(bool),
    /// A 32-bit integer, by value.
    Int(i32),
    /// A 64-bit integer, by value.
    Long(i64),
    /// A 32-bit float, by value (bit-exact).
    Float(f32),
    /// A 64-bit float, by value (bit-exact).
    Double(f64),
    /// A string, by value.
    Str(String),
    /// A reference to an object exported by `node` under id `object`,
    /// whose original (base) class is named `class`. The receiving runtime
    /// materialises a proxy of the matching proxy family for it (or unwraps
    /// it to the local object if `node` is the receiver itself).
    Remote {
        /// The exporting node.
        node: u32,
        /// The export id on that node.
        object: u64,
        /// Name of the object's implementation class (picks the proxy
        /// family at the receiver).
        class: String,
    },
    /// An array passed by value.
    Array(Vec<WireValue>),
    /// A by-value snapshot of an object's state (migration & exceptions).
    ObjectState {
        /// The object's class name.
        class: String,
        /// Flattened field slots.
        fields: Vec<WireValue>,
    },
}

/// A request sent to a remote node.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Invoke `method` on the exported object `object`.
    Call {
        /// Export id of the receiver on the serving node.
        object: u64,
        /// Method descriptor (`name@sigid`).
        method: String,
        /// Marshalled arguments.
        args: Vec<WireValue>,
    },
    /// Create an instance of `class` remotely (factory `make` + `init_k`).
    Create {
        /// Original class name.
        class: String,
        /// Constructor ordinal (0 for the factory default path).
        ctor: u16,
        /// Marshalled constructor arguments.
        args: Vec<WireValue>,
    },
    /// Discover the node's singleton for `class` (factory `discover`).
    Discover {
        /// Original class name.
        class: String,
    },
    /// Fetch the state of exported object `object` (migration).
    Fetch {
        /// Export id on the serving node.
        object: u64,
    },
    /// Install `state` as a new exported object (migration target side).
    /// `source` carries the object's previous home `(node, object)` so the
    /// receiver can rewrite an existing proxy for it in place instead of
    /// allocating a duplicate.
    Install {
        /// The object state to materialise (an [`WireValue::ObjectState`]).
        state: WireValue,
        /// The object's previous home, letting the receiver rewrite an
        /// existing proxy in place instead of allocating a duplicate.
        source: Option<(u32, u64)>,
    },
    /// Replace the exported object `object` with a forwarding proxy to its
    /// new home `(to_node, to_object)` — the owner-side half of a boundary
    /// pull (the reverse of Figure 1's swap).
    Forward {
        /// Export id of the object being moved away.
        object: u64,
        /// The node it now lives on.
        to_node: u32,
        /// Its export id there.
        to_object: u64,
    },
    /// Ship a replicated export's current state to a backup node. Sent by
    /// the owner after every served mutating call on a `replicate k` class;
    /// the backup files the snapshot under the *owner's* location, ready to
    /// be promoted if the owner crash-stops.
    ReplicaSync {
        /// Export id on the owning (sending) node.
        object: u64,
        /// The owner's property version at snapshot time.
        version: u64,
        /// The object state (a [`WireValue::ObjectState`]).
        state: WireValue,
    },
    /// Ask the receiving node to promote its replica of the crashed owner's
    /// export `(node, object)` to a first-class export of its own. Replied
    /// with a [`WireValue::Remote`] naming the object's new home.
    Promote {
        /// The crashed owner.
        node: u32,
        /// The export id the owner served the object under.
        object: u64,
    },
    /// A coalesced sequence of deferrable requests — void-returning calls,
    /// property sets and replica syncs queued by a caller whose policy
    /// marks the target classes `batch on` — applied by the serving node
    /// **in order** and answered with a single [`Reply::Batch`]. The whole
    /// batch rides one message id, so a retransmission is deduplicated as a
    /// unit and the operations are never re-applied.
    Batch(Vec<Request>),
}

/// A reply to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Normal completion with a (possibly `Null`) result.
    Value(WireValue),
    /// The remote method threw an in-model exception; carries the exception
    /// class and field state so the caller can re-throw an equivalent
    /// object.
    Exception {
        /// The exception's class name.
        class: String,
        /// Its field slots, by value.
        fields: Vec<WireValue>,
    },
    /// An infrastructure failure (unknown object, marshalling error, …).
    Fault(String),
    /// The per-operation outcomes of a [`Request::Batch`], in operation
    /// order. Each entry pairs the served object's property version *after*
    /// that operation executed (0 when the operation did not address a
    /// versioned object) with the operation's own reply, so coherence
    /// information for every batched operation rides the single frame.
    Batch(Vec<(u64, Reply)>),
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl WireError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        WireError(msg.into())
    }
}

/// A wire protocol: encodes and decodes [`Request`]s and [`Reply`]s.
///
/// Every frame carries a caller-assigned **message id** in its header.
/// Retransmissions of a request reuse the id, which is what lets the
/// serving node recognise a duplicate and answer from its reply cache
/// instead of re-executing the method (at-most-once execution); replies
/// echo the id of the request they answer. The id is part of the frame,
/// not of [`Request`] — all three protocol families carry it in their
/// native header position (JRMP stream id, GIOP request id, a SOAP header
/// element).
///
/// Alongside the message id the header carries a [`TraceContext`] — the
/// causal coordinates of the span the frame was sent from — so the serving
/// node can parent its dispatch span under the caller's span even across a
/// multi-hop proxy chain. A request's retransmissions carry the *same*
/// context (the frame is encoded once and resent verbatim); replies carry
/// the server span's context. Frames from pre-tracing peers decode as
/// [`TraceContext::NONE`].
///
/// Reply headers additionally piggyback the served object's **property
/// version** — the counter the proxy-side property cache tags its entries
/// with — so coherence information rides on traffic that flows anyway.
/// Frames from pre-caching peers decode with version 0.
///
/// Implementations must round-trip exactly. `overhead_ns` models the
/// protocol-stack processing cost charged per message in addition to the
/// transmission cost (e.g. XML parsing for SOAP).
///
/// The required methods form the **zero-copy fast path**: `*_into`
/// encoders write into a caller-supplied (typically pooled) buffer and
/// thread an optional per-link [`SigTable`] for signature interning, and
/// `decode_request_header` parses only the frame header, deferring the
/// owned body to [`FrameHeader::materialise`]. The provided
/// `encode_request`/`decode_request`/`encode_reply`/`decode_reply`
/// convenience wrappers are the stateless path: fresh buffers, no
/// signature table, and — by construction — the pre-interning wire format
/// (RMI v7 / GIOP 1.7), byte-identical to what earlier releases emitted.
pub trait Protocol {
    /// Short protocol name, used in generated proxy class names
    /// (`A_O_Proxy_SOAP` etc.).
    fn name(&self) -> &'static str;

    /// Encode a request under message id `id`, carrying trace context
    /// `ctx`, into `out` (cleared first; its allocation is reused). With a
    /// [`SigTable`], signature-position strings are interned and the
    /// sigged frame format is emitted (RMI v8 / GIOP 1.8 / SOAP
    /// `rafda:sigref`).
    ///
    /// # Errors
    /// [`WireError`] when a length prefix would not fit the wire format
    /// (e.g. a >4 GiB string); no frame bytes are produced in that case.
    fn encode_request_into(
        &self,
        id: u64,
        ctx: TraceContext,
        req: &Request,
        sigs: Option<&mut SigTable>,
        out: &mut Vec<u8>,
    ) -> Result<(), WireError>;

    /// Parse a request frame's header — message id, trace context and
    /// request discriminant — without building the owned body. The
    /// returned [`FrameHeader`] borrows `bytes` and materialises the
    /// [`Request`] on demand.
    ///
    /// # Errors
    /// [`WireError`] on a malformed header.
    fn decode_request_header<'a>(&self, bytes: &'a [u8]) -> Result<FrameHeader<'a>, WireError>;

    /// Encode a reply answering the request with message id `id`, carrying
    /// the server span's trace context `ctx` and the served object's
    /// property version `obj_version` (0 when the request did not address a
    /// versioned object), into `out` (cleared first). See
    /// [`Protocol::encode_request_into`] for the `sigs` semantics.
    ///
    /// # Errors
    /// [`WireError`] when a length prefix would not fit the wire format.
    fn encode_reply_into(
        &self,
        id: u64,
        ctx: TraceContext,
        obj_version: u64,
        reply: &Reply,
        sigs: Option<&mut SigTable>,
        out: &mut Vec<u8>,
    ) -> Result<(), WireError>;

    /// Decode a reply, resolving signature references against (and
    /// interning inline signatures into) the link's table when one is
    /// supplied. Frames from pre-caching peers decode with version 0.
    ///
    /// # Errors
    /// [`WireError`] on malformed input or an unresolvable signature
    /// reference.
    fn decode_reply_with(
        &self,
        bytes: &[u8],
        sigs: Option<&mut SigTable>,
    ) -> Result<(u64, TraceContext, u64, Reply), WireError>;

    /// Encode a request into a fresh buffer with no signature table (the
    /// stateless wire format).
    ///
    /// # Errors
    /// [`WireError`] when a length prefix would not fit the wire format.
    fn encode_request(
        &self,
        id: u64,
        ctx: TraceContext,
        req: &Request,
    ) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::with_capacity(64);
        self.encode_request_into(id, ctx, req, None, &mut out)?;
        Ok(out)
    }

    /// Decode a request, returning its message id, trace context and body.
    /// Equivalent to header decode + immediate materialisation without a
    /// signature table, so frames carrying signature *references* need
    /// [`Protocol::decode_request_header`] +
    /// [`FrameHeader::materialise`] with the link table instead.
    ///
    /// # Errors
    /// [`WireError`] on malformed input.
    fn decode_request(&self, bytes: &[u8]) -> Result<(u64, TraceContext, Request), WireError> {
        let header = self.decode_request_header(bytes)?;
        let req = header.materialise(None)?;
        Ok((header.msg_id, header.ctx, req))
    }

    /// Encode a reply into a fresh buffer with no signature table (the
    /// stateless wire format).
    ///
    /// # Errors
    /// [`WireError`] when a length prefix would not fit the wire format.
    fn encode_reply(
        &self,
        id: u64,
        ctx: TraceContext,
        obj_version: u64,
        reply: &Reply,
    ) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::with_capacity(64);
        self.encode_reply_into(id, ctx, obj_version, reply, None, &mut out)?;
        Ok(out)
    }

    /// Decode a reply, returning the answered message id, trace context,
    /// object property version and body. Frames from pre-caching peers
    /// decode with version 0.
    ///
    /// # Errors
    /// [`WireError`] on malformed input.
    fn decode_reply(&self, bytes: &[u8]) -> Result<(u64, TraceContext, u64, Reply), WireError> {
        self.decode_reply_with(bytes, None)
    }

    /// Per-message protocol-stack processing cost (simulated nanoseconds).
    fn overhead_ns(&self) -> u64 {
        0
    }
}

/// The built-in protocol families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProtocolKind {
    /// Compact tagged binary with a JRMP-style header.
    Rmi,
    /// Verbose self-describing XML text.
    Soap,
    /// GIOP/CDR-style aligned binary.
    Corba,
}

impl ProtocolKind {
    /// All built-in protocols.
    pub const ALL: [ProtocolKind; 3] = [ProtocolKind::Rmi, ProtocolKind::Soap, ProtocolKind::Corba];

    /// Instantiate the codec.
    pub fn codec(self) -> Box<dyn Protocol> {
        match self {
            ProtocolKind::Rmi => Box::new(RmiCodec::new()),
            ProtocolKind::Soap => Box::new(SoapCodec::new()),
            ProtocolKind::Corba => Box::new(CorbaCodec::new()),
        }
    }

    /// The protocol's short name (as used in proxy class names).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Rmi => "RMI",
            ProtocolKind::Soap => "SOAP",
            ProtocolKind::Corba => "CORBA",
        }
    }

    /// Parse from the short name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "RMI" => Some(ProtocolKind::Rmi),
            "SOAP" => Some(ProtocolKind::Soap),
            "CORBA" => Some(ProtocolKind::Corba),
            _ => None,
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
pub(crate) mod testdata {
    use super::*;

    /// A representative set of values hitting every constructor and nesting.
    pub fn sample_values() -> Vec<WireValue> {
        vec![
            WireValue::Null,
            WireValue::Bool(true),
            WireValue::Bool(false),
            WireValue::Int(-42),
            WireValue::Int(i32::MAX),
            WireValue::Long(1 << 50),
            WireValue::Float(1.5),
            WireValue::Double(-0.125),
            WireValue::Str(String::new()),
            WireValue::Str("hello world".to_owned()),
            WireValue::Str("escapes <&>\"' and unicode ☃".to_owned()),
            WireValue::Remote {
                node: 3,
                object: 99,
                class: "C".to_owned(),
            },
            WireValue::Array(vec![
                WireValue::Int(1),
                WireValue::Null,
                WireValue::Array(vec![WireValue::Str("nested".into())]),
            ]),
            WireValue::ObjectState {
                class: "X_O_Local".to_owned(),
                fields: vec![
                    WireValue::Remote {
                        node: 0,
                        object: 1,
                        class: "Y".to_owned(),
                    },
                    WireValue::Int(7),
                ],
            },
        ]
    }

    pub fn sample_requests() -> Vec<Request> {
        let mut out = vec![
            Request::Discover {
                class: "X_C_Int".into(),
            },
            Request::Fetch { object: 17 },
            Request::Create {
                class: "X".into(),
                ctor: 2,
                args: sample_values(),
            },
            Request::Install {
                state: WireValue::ObjectState {
                    class: "C_O_Local".into(),
                    fields: vec![WireValue::Long(1)],
                },
                source: None,
            },
        ];
        out.push(Request::Install {
            state: WireValue::ObjectState {
                class: "D_O_Local".into(),
                fields: vec![],
            },
            source: Some((2, 9)),
        });
        out.push(Request::Forward {
            object: 3,
            to_node: 1,
            to_object: 44,
        });
        out.push(Request::Call {
            object: 5,
            method: "get_y".into(),
            args: vec![],
        });
        out.push(Request::Call {
            object: u64::MAX,
            method: "m".into(),
            args: sample_values(),
        });
        out.push(Request::ReplicaSync {
            object: 12,
            version: 1 << 33,
            state: WireValue::ObjectState {
                class: "C_O_Local".into(),
                fields: vec![WireValue::Int(5), WireValue::Null],
            },
        });
        out.push(Request::Promote {
            node: 2,
            object: u64::MAX,
        });
        out.push(Request::Batch(vec![
            Request::Call {
                object: 5,
                method: "set_y@3".into(),
                args: vec![WireValue::Int(1)],
            },
            Request::Call {
                object: 5,
                method: "poke@4".into(),
                args: vec![],
            },
            Request::ReplicaSync {
                object: 12,
                version: 4,
                state: WireValue::ObjectState {
                    class: "C_O_Local".into(),
                    fields: vec![WireValue::Int(5)],
                },
            },
        ]));
        out.push(Request::Batch(vec![]));
        out
    }

    pub fn sample_replies() -> Vec<Reply> {
        let mut out: Vec<Reply> = sample_values().into_iter().map(Reply::Value).collect();
        out.push(Reply::Exception {
            class: "AppError".into(),
            fields: vec![WireValue::Int(3)],
        });
        out.push(Reply::Fault("unknown object 9".into()));
        out.push(Reply::Batch(vec![
            (7, Reply::Value(WireValue::Null)),
            (
                u64::MAX,
                Reply::Exception {
                    class: "AppError".into(),
                    fields: vec![WireValue::Str("batched".into())],
                },
            ),
            (0, Reply::Fault("unknown object 3".into())),
        ]));
        out.push(Reply::Batch(vec![]));
        out
    }

    /// Assert a protocol round-trips all samples, including message ids and
    /// trace contexts at the extremes of their domains.
    pub fn assert_roundtrips(p: &dyn Protocol) {
        for (i, req) in sample_requests().into_iter().enumerate() {
            let id = sample_id(i);
            let ctx = sample_ctx(i);
            let bytes = p
                .encode_request(id, ctx, &req)
                .unwrap_or_else(|e| panic!("{}: encode {e} for {req:?}", p.name()));
            let (back_id, back_ctx, back) = p
                .decode_request(&bytes)
                .unwrap_or_else(|e| panic!("{}: {e} for {req:?}", p.name()));
            assert_eq!(back_id, id, "{} request id roundtrip", p.name());
            assert_eq!(back_ctx, ctx, "{} request ctx roundtrip", p.name());
            assert_eq!(back, req, "{} request roundtrip", p.name());
        }
        for (i, reply) in sample_replies().into_iter().enumerate() {
            let id = sample_id(i);
            let ctx = sample_ctx(i);
            let ver = sample_version(i);
            let bytes = p
                .encode_reply(id, ctx, ver, &reply)
                .unwrap_or_else(|e| panic!("{}: encode {e} for {reply:?}", p.name()));
            let (back_id, back_ctx, back_ver, back) = p
                .decode_reply(&bytes)
                .unwrap_or_else(|e| panic!("{}: {e} for {reply:?}", p.name()));
            assert_eq!(back_id, id, "{} reply id roundtrip", p.name());
            assert_eq!(back_ctx, ctx, "{} reply ctx roundtrip", p.name());
            assert_eq!(back_ver, ver, "{} reply version roundtrip", p.name());
            assert_eq!(back, reply, "{} reply roundtrip", p.name());
        }
    }

    fn sample_id(i: usize) -> u64 {
        [0, 1, 7, u64::from(u32::MAX), u64::MAX][i % 5]
    }

    fn sample_version(i: usize) -> u64 {
        [0, 1, 3, 1 << 40, u64::MAX, 42][i % 6]
    }

    fn sample_ctx(i: usize) -> TraceContext {
        [
            TraceContext::NONE,
            TraceContext {
                trace_id: 1,
                span_id: 2,
                parent_span_id: 0,
            },
            TraceContext {
                trace_id: 9,
                span_id: 40,
                parent_span_id: 39,
            },
            TraceContext {
                trace_id: u64::MAX,
                span_id: u64::MAX,
                parent_span_id: u64::MAX,
            },
        ][i % 4]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_kinds_resolve_names() {
        for k in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::from_name(k.name()), Some(k));
            assert_eq!(k.codec().name(), k.name());
        }
        assert_eq!(ProtocolKind::from_name("XMLRPC"), None);
    }

    #[test]
    fn soap_is_much_larger_than_binary_protocols() {
        let req = Request::Call {
            object: 5,
            method: "set_y".into(),
            args: vec![WireValue::Remote {
                node: 1,
                object: 2,
                class: "Y".to_owned(),
            }],
        };
        let rmi = RmiCodec::new()
            .encode_request(1, TraceContext::NONE, &req)
            .unwrap()
            .len();
        let soap = SoapCodec::new()
            .encode_request(1, TraceContext::NONE, &req)
            .unwrap()
            .len();
        let corba = CorbaCodec::new()
            .encode_request(1, TraceContext::NONE, &req)
            .unwrap()
            .len();
        assert!(soap > 3 * rmi, "soap={soap} rmi={rmi}");
        assert!(soap > 2 * corba, "soap={soap} corba={corba}");
    }

    #[test]
    fn soap_has_highest_processing_overhead() {
        let rmi = RmiCodec::new().overhead_ns();
        let soap = SoapCodec::new().overhead_ns();
        let corba = CorbaCodec::new().overhead_ns();
        assert!(soap > corba && corba >= rmi);
    }
}
