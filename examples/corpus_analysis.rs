//! Experiment E3 as a runnable study: the Section 2.4 transformability
//! analysis over a JDK-1.4.1-shaped corpus, reproducing
//!
//! > "A class that cannot be transformed cannot be substitutable. About 40%
//! > of the 8,200 classes and interfaces in JDK 1.4.1 cannot be
//! > transformed."
//!
//! plus the sensitivity the paper predicts ("This percentage would increase
//! if the user code contains native methods which refer to a JDK class").
//!
//! Run with: `cargo run -p rafda --example corpus_analysis --release`

use rafda::corpus::JdkProfile;
use rafda::transform::analyze;
use rafda::ClassUniverse;

fn main() {
    let profile = JdkProfile::jdk_1_4_1();
    let mut universe = ClassUniverse::new();
    let (_ids, stats) = rafda::corpus::generate_jdk(&mut universe, &profile);
    println!("== Synthetic JDK 1.4.1 corpus ==");
    println!(
        "classes: {}   interfaces: {}   native classes: {}   special: {}   reference edges: {}\n",
        stats.classes,
        stats.interfaces,
        stats.native_classes,
        stats.special_classes,
        stats.reference_edges
    );

    let report = analyze(&universe);
    println!("== Transformability analysis (paper Section 2.4) ==");
    println!("{}", report);
    println!(
        "paper reports: \"About 40% of the 8,200 classes and interfaces in JDK 1.4.1 cannot be transformed\"\n\
         measured here: {:.1}% of {}\n",
        100.0 * report.non_transformable_fraction(),
        report.total
    );

    println!("== Per-package breakdown ==");
    println!(
        "{:>16} | {:>7} | {:>18}",
        "package", "classes", "non-transformable"
    );
    for (package, total, nt) in
        rafda::corpus::breakdown_by_package(&universe, |id| report.is_transformable(id))
    {
        println!(
            "{package:>16} | {total:>7} | {:>17.1}%",
            100.0 * nt as f64 / total as f64
        );
    }
    println!();

    println!("== Sensitivity: native-method density (E3b) ==");
    println!("{:>14} | {:>18}", "native scale", "non-transformable");
    for scale in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let profile = JdkProfile::scaled(2000).with_native_scale(scale);
        let mut u = ClassUniverse::new();
        rafda::corpus::generate_jdk(&mut u, &profile);
        let r = analyze(&u);
        println!(
            "{:>14} | {:>17.1}%",
            format!("{scale}x"),
            100.0 * r.non_transformable_fraction()
        );
    }

    println!("\n== Sensitivity: reference-graph density (E3b) ==");
    println!("{:>14} | {:>18}", "refs/class", "non-transformable");
    for refs in [0.2, 0.4, 0.55, 0.8, 1.2, 2.0] {
        let profile = JdkProfile::scaled(2000).with_refs_per_class(refs);
        let mut u = ClassUniverse::new();
        rafda::corpus::generate_jdk(&mut u, &profile);
        let r = analyze(&u);
        println!(
            "{:>14} | {:>17.1}%",
            refs,
            100.0 * r.non_transformable_fraction()
        );
    }
}
