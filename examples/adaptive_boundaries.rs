//! Adaptive distribution boundaries: "the distributed program can adapt to
//! its environment by dynamically altering its distribution boundaries"
//! (paper, Section 1).
//!
//! A pool of worker objects is placed on node 0, but the workload's
//! affinity shifts: phase 1 hammers them from node 0 (fine), phase 2 from
//! node 1 (every call crosses the LAN). The affinity loop notices and
//! migrates the hot objects to their dominant caller; cross-node traffic
//! collapses.
//!
//! Run with: `cargo run -p rafda --example adaptive_boundaries`

use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::{AffinityConfig, Application, NodeId, Placement, StaticPolicy, Ty, Value};

fn build() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let w = u.declare("Worker", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, w);
    let acc = cb.field(Field::new("acc", Ty::Long));
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_local(1);
    mb.unop(rafda::classmodel::UnOp::Convert("long"));
    mb.put_field(w, acc);
    mb.ret();
    cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
    // long work(long d) { acc = acc + d; return acc; }
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(w, acc);
    mb.load_local(1).add();
    mb.put_field(w, acc);
    mb.load_this().get_field(w, acc).ret_value();
    cb.method(u, "work", vec![Ty::Long], Ty::Long, Some(mb.finish()));
    cb.finish(u);
    app
}

fn main() {
    let policy = StaticPolicy::new().place("Worker", Placement::Node(NodeId(0)));
    let cluster =
        build()
            .transform(&["RMI"])
            .expect("transformable")
            .deploy(2, 3, Box::new(policy));
    let net = cluster.network();
    let n0 = NodeId(0);
    let n1 = NodeId(1);

    // Worker pool on node 0; node 1 holds proxies.
    let workers: Vec<Value> = (0..4)
        .map(|i| {
            cluster
                .new_instance(n0, "Worker", 0, vec![Value::Int(i)])
                .unwrap()
        })
        .collect();
    let remote_workers: Vec<Value> = (0..4)
        .map(|i| {
            cluster
                .new_instance(n1, "Worker", 0, vec![Value::Int(i + 10)])
                .unwrap()
        })
        .collect();
    let _ = workers;

    println!("== Phase 1: node 1 calls its (remote) workers 25x each ==");
    let m0 = net.stats().messages;
    let t0 = net.now();
    for w in &remote_workers {
        for d in 0..25 {
            cluster
                .call_method(n1, w.clone(), "work", vec![Value::Long(d)])
                .unwrap();
        }
    }
    println!(
        "  cross-node messages: {}, elapsed {}",
        net.stats().messages - m0,
        net.now() - t0
    );

    println!("\n== Adaptation pass ==");
    let events = cluster.adapt(&AffinityConfig::default());
    for e in &events {
        println!("  {e}");
    }
    assert!(!events.is_empty(), "the hot workers must move");

    println!("\n== Phase 2: same workload after adaptation ==");
    let m1 = net.stats().messages;
    let t1 = net.now();
    for w in &remote_workers {
        for d in 0..25 {
            cluster
                .call_method(n1, w.clone(), "work", vec![Value::Long(d)])
                .unwrap();
        }
    }
    let new_msgs = net.stats().messages - m1;
    println!(
        "  cross-node messages: {new_msgs}, elapsed {}",
        net.now() - t1
    );
    println!(
        "\nworkers now live on {:?}",
        cluster.location_of(n1, &remote_workers[0]).unwrap()
    );
    assert_eq!(new_msgs, 0, "post-adaptation calls must be local");
}
