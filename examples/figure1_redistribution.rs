//! The paper's Figure 1, narrated: a shared document service (`C`) used by
//! an editor (`A`) and an indexer (`B`). The deployment starts fully local,
//! then the document is migrated to a second machine — the local instance
//! is rewritten in place into proxy `Cp` — and finally pulled back. The
//! example prints per-phase cost so the boundary change is visible.
//!
//! Run with: `cargo run -p rafda --example figure1_redistribution`

use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::{Application, LocalPolicy, NodeId, Ty, Value};

fn build() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();

    // class Document { int revision; String title; … }
    let doc = u.declare("Document", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(u, doc);
        let rev = cb.field(Field::new("revision", Ty::Int));
        let title = cb.field(Field::new("title", Ty::Str));
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(doc, title);
        mb.load_this().const_int(0).put_field(doc, rev);
        mb.ret();
        cb.ctor(u, vec![Ty::Str], Some(mb.finish()));
        // int edit() { revision = revision + 1; return revision; }
        let mut mb = MethodBuilder::new(1);
        mb.load_this();
        mb.load_this().get_field(doc, rev);
        mb.const_int(1).add();
        mb.put_field(doc, rev);
        mb.load_this().get_field(doc, rev).ret_value();
        cb.method(u, "edit", vec![], Ty::Int, Some(mb.finish()));
        // String describe() { return title + "#" + revision; }
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(doc, title);
        mb.const_str("#");
        mb.add();
        mb.load_this().get_field(doc, rev);
        mb.unop(rafda::classmodel::UnOp::Convert("string"));
        mb.add();
        mb.ret_value();
        cb.method(u, "describe", vec![], Ty::Str, Some(mb.finish()));
        cb.finish(u);
    }

    // Editor and Indexer both hold the shared document.
    for name in ["Editor", "Indexer"] {
        let id = u.declare(name, ClassKind::Class);
        let mut cb = ClassBuilder::new(u, id);
        let f = cb.field(Field::new("doc", Ty::Object(doc)));
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(id, f).ret();
        cb.ctor(u, vec![Ty::Object(doc)], Some(mb.finish()));
        let edit_sig = u.sig("edit", vec![]);
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(id, f);
        mb.invoke(edit_sig, 0);
        mb.ret_value();
        cb.method(u, "touch", vec![], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    }
    app
}

fn main() {
    let cluster = build().transform(&["RMI"]).expect("transformable").deploy(
        2,
        1,
        Box::new(LocalPolicy::default()),
    );
    let n0 = NodeId(0);
    let n1 = NodeId(1);
    let net = cluster.network();

    println!("== Phase 1: everything on node 0 (Figure 1, left) ==");
    let doc = cluster
        .new_instance(n0, "Document", 0, vec![Value::str("paper.tex")])
        .unwrap();
    let editor = cluster
        .new_instance(n0, "Editor", 0, vec![doc.clone()])
        .unwrap();
    let indexer = cluster
        .new_instance(n0, "Indexer", 0, vec![doc.clone()])
        .unwrap();
    for _ in 0..3 {
        cluster
            .call_method(n0, editor.clone(), "touch", vec![])
            .unwrap();
    }
    let local_msgs = net.stats().messages;
    println!(
        "  3 edits -> {}   (network messages so far: {local_msgs})",
        cluster
            .call_method(n0, doc.clone(), "describe", vec![])
            .unwrap()
    );

    println!("\n== Phase 2: migrate the document to node 1 (Figure 1, right) ==");
    let t0 = net.now();
    let handle = doc.as_ref_handle().unwrap();
    let event = cluster.migrate(n0, handle, n1).unwrap();
    println!("  {event}   (migration cost: {})", net.now() - t0);
    println!(
        "  document now lives on {:?}; editor/indexer untouched",
        cluster.location_of(n0, &doc).unwrap()
    );
    let t1 = net.now();
    cluster
        .call_method(n0, editor.clone(), "touch", vec![])
        .unwrap();
    cluster
        .call_method(n0, indexer.clone(), "touch", vec![])
        .unwrap();
    println!(
        "  2 more edits through the same references -> {}",
        cluster
            .call_method(n0, doc.clone(), "describe", vec![])
            .unwrap()
    );
    println!(
        "  remote phase: {} messages, {} per call round-trip",
        net.stats().messages - local_msgs,
        rafda::SimTime::from_ns((net.now() - t1).as_ns() / 3)
    );

    println!("\n== Phase 3: pull the document back (boundary reversal) ==");
    cluster.pull_local(n0, handle).unwrap();
    let msgs = net.stats().messages;
    cluster.call_method(n0, editor, "touch", vec![]).unwrap();
    cluster.call_method(n0, indexer, "touch", vec![]).unwrap();
    println!(
        "  2 edits after pulling local -> {}   (new network messages: {})",
        cluster
            .call_method(n0, doc.clone(), "describe", vec![])
            .unwrap(),
        net.stats().messages - msgs
    );
    println!("\nruntime stats: {:?}", cluster.stats());
}
