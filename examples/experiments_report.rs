//! One-shot consolidated experiment report: regenerates the headline
//! numbers of every experiment in `EXPERIMENTS.md` without the Criterion
//! machinery (those benches measure wall-clock precisely; this reproduces
//! the *shapes* in seconds).
//!
//! Run with: `cargo run -p rafda --example experiments_report --release`

use rafda::baseline::WrapperTransformer;
use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::corpus::{generate_app, AppSpec, JdkProfile, ObserverHooks};
use rafda::transform::analyze;
use rafda::{
    declare_introspection, AffinityConfig, Application, ClassUniverse, LocalPolicy, NetFailureKind,
    NodeId, Placement, StaticPolicy, Ty, Value, Vm, INTROSPECTION_CLASS,
};

fn chain_app(spec: &AppSpec) -> Application {
    let mut app = Application::new();
    let obs = app.observer();
    generate_app(
        app.universe_mut(),
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
        spec,
    );
    app
}

fn e1() {
    println!("== E1: Figure 1 redistribution ==");
    let mut app = Application::new();
    rafda::classmodel::sample::build_figure2(app.universe_mut());
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(2, 42, Box::new(LocalPolicy::default()));
    let y = cluster
        .new_instance(NodeId(0), "Y", 0, vec![Value::Int(3)])
        .unwrap();
    let net = cluster.network();
    let t0 = net.now();
    for _ in 0..100 {
        cluster
            .call_method(NodeId(0), y.clone(), "n", vec![Value::Long(1)])
            .unwrap();
    }
    let local = (net.now() - t0).as_ns() / 100;
    let h = y.as_ref_handle().unwrap();
    cluster.migrate(NodeId(0), h, NodeId(1)).unwrap();
    let t0 = net.now();
    for _ in 0..100 {
        cluster
            .call_method(NodeId(0), y.clone(), "n", vec![Value::Long(1)])
            .unwrap();
    }
    let remote = (net.now() - t0).as_ns() / 100;
    println!("  local call:  {local} ns (simulated)");
    println!("  remote call: {remote} ns (simulated, via in-place proxy swap)");
    cluster.pull_local(NodeId(0), h).unwrap();
    println!("  boundary reversal (pull_local): ok\n");
}

fn e3() {
    println!("== E3: JDK transformability ==");
    let mut u = ClassUniverse::new();
    rafda::corpus::generate_jdk(&mut u, &JdkProfile::jdk_1_4_1());
    let report = analyze(&u);
    println!(
        "  paper: ~40% of 8,200   measured: {:.1}% of {}\n",
        100.0 * report.non_transformable_fraction(),
        report.total
    );
}

fn e4() {
    println!("== E4: overhead ordering ==");
    let spec = AppSpec {
        classes: 12,
        int_fields: 2,
        statics: false,
        inheritance: false,
        arrays: false,
        seed: 17,
    };
    let run_original = || {
        let app = chain_app(&spec);
        let vm = Vm::new(std::sync::Arc::new(app.universe().clone()));
        vm.bind_observer(&app.observer());
        vm.run_observed("Driver", "main", vec![Value::Int(9)]);
        vm.stats().steps
    };
    let run_rafda = || {
        let rt = chain_app(&spec).transform(&["RMI"]).unwrap().deploy_local();
        rt.run_observed("Driver", "main", vec![Value::Int(9)]);
        rt.vm().stats().steps
    };
    let run_wrapper = || {
        let mut app = chain_app(&spec);
        let obs = app.observer();
        WrapperTransformer::new().run(app.universe_mut()).unwrap();
        let vm = Vm::new(std::sync::Arc::new(app.universe().clone()));
        vm.bind_observer(&obs);
        vm.run_observed("Driver", "main", vec![Value::Int(9)]);
        vm.stats().steps
    };
    let (o, r, w) = (run_original(), run_rafda(), run_wrapper());
    println!(
        "  original: {o} steps   RAFDA: {r} ({:.2}x)   wrapper: {w} ({:.2}x)\n",
        r as f64 / o as f64,
        w as f64 / o as f64
    );
}

fn e5() {
    println!("== E5: protocol comparison (per remote call) ==");
    for proto in ["RMI", "CORBA", "SOAP"] {
        let mut app = Application::new();
        rafda::classmodel::sample::build_figure2(app.universe_mut());
        let policy = StaticPolicy::new()
            .default_statics(NodeId(1))
            .default_protocol(proto);
        let cluster =
            app.transform(&["RMI", "SOAP", "CORBA"])
                .unwrap()
                .deploy(2, 42, Box::new(policy));
        cluster
            .call_static(NodeId(0), "X", "p", vec![Value::Int(6)])
            .unwrap();
        let net = cluster.network();
        net.reset_stats();
        let t0 = net.now();
        for _ in 0..50 {
            cluster
                .call_static(NodeId(0), "X", "p", vec![Value::Int(6)])
                .unwrap();
        }
        let stats = net.stats();
        println!(
            "  {proto:<6} {:>5} bytes/call   {:>9} ns/call",
            stats.bytes / stats.messages.max(1) * 2,
            (net.now() - t0).as_ns() / 50
        );
    }
    println!();
}

fn e6() {
    println!("== E6: adaptation ==");
    let mut app = Application::new();
    rafda::classmodel::sample::build_figure2(app.universe_mut());
    let policy = StaticPolicy::new().place("Y", Placement::Node(NodeId(0)));
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(2, 42, Box::new(policy));
    let ys: Vec<Value> = (0..4)
        .map(|i| {
            cluster
                .new_instance(NodeId(1), "Y", 0, vec![Value::Int(i)])
                .unwrap()
        })
        .collect();
    let drive = |tag: &str| {
        let before = cluster.network().stats().messages;
        for y in &ys {
            for d in 0..20 {
                cluster
                    .call_method(NodeId(1), y.clone(), "n", vec![Value::Long(d)])
                    .unwrap();
            }
        }
        println!(
            "  {tag}: {} messages",
            cluster.network().stats().messages - before
        );
    };
    drive("before adapt");
    let events = cluster.adapt(&AffinityConfig::default());
    println!("  adapt: {} migrations", events.len());
    drive("after adapt ");
    println!();
}

fn e7() {
    println!("== E7: equivalence spot checks ==");
    let mut agree = 0;
    for seed in 1..=8u64 {
        let spec = AppSpec {
            classes: 5,
            int_fields: 2,
            statics: true,
            inheritance: seed % 2 == 0,
            arrays: seed % 3 == 0,
            seed,
        };
        let original = chain_app(&spec).run_original("Driver", "main", vec![Value::Int(4)]);
        let rt = chain_app(&spec).transform(&["RMI"]).unwrap().deploy_local();
        let local = rt.run_observed("Driver", "main", vec![Value::Int(4)]);
        if original == local {
            agree += 1;
        }
    }
    println!("  {agree}/8 random programs trace-identical after transformation\n");
}

fn e7_retry() {
    println!("== E7b: fault tolerance — drop rate vs. retry effort ==");
    let spec = AppSpec {
        classes: 6,
        int_fields: 2,
        statics: true,
        inheritance: false,
        arrays: false,
        seed: 77,
    };
    let deploy = || {
        let mut policy = StaticPolicy::new().default_statics(NodeId(1));
        for i in 0..6 {
            policy = policy.place(&format!("C{i}"), Placement::Node(NodeId((i % 2) as u32)));
        }
        chain_app(&spec)
            .transform(&["RMI"])
            .unwrap()
            .deploy(2, 7, Box::new(policy))
    };
    let clean = deploy().run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)]);
    println!("  drop    mean att.  retries  dedup  identical trace");
    for drop in [0.0, 0.05, 0.10, 0.20] {
        let cluster = deploy();
        cluster.network().fault_plan(|f| f.drop_probability = drop);
        let trace = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)]);
        let stats = cluster.stats();
        println!(
            "  {:>4.0}%   {:>9.2}  {:>7}  {:>5}  {}",
            drop * 100.0,
            stats.mean_attempts(),
            stats.retries,
            stats.dedup_hits,
            if trace == clean { "yes" } else { "NO" },
        );
    }
    println!();
}

fn e9() {
    println!("== E9: causal tracing — multi-hop latency breakdown ==");
    let mut app = Application::new();
    rafda::classmodel::sample::build_figure2(app.universe_mut());
    // Figure 2 over three nodes: driver on 0, X on 2, Y on 1 — every
    // x.m() is a two-hop chain 0 -> 2 -> 1 stitched into one trace.
    let policy = StaticPolicy::new()
        .place("Y", Placement::Node(NodeId(1)))
        .place("X", Placement::Node(NodeId(2)))
        .default_statics(NodeId(0));
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 42, Box::new(policy));
    let y = cluster
        .new_instance(NodeId(0), "Y", 0, vec![Value::Int(3)])
        .unwrap();
    let x = cluster.new_instance(NodeId(0), "X", 0, vec![y]).unwrap();
    for j in 0..20 {
        cluster
            .call_method(NodeId(0), x.clone(), "m", vec![Value::Long(j)])
            .unwrap();
    }
    // One lossy call so the trace shows a linked retransmission.
    let net = cluster.network();
    let seq = net.transmit_seq();
    net.fault_plan(|f| f.drop_message(seq));
    cluster
        .call_method(NodeId(0), x, "m", vec![Value::Long(99)])
        .unwrap();

    print!("{}", cluster.telemetry_report(5));
    let log = cluster.span_log();
    let lossy_trace = log
        .spans()
        .iter()
        .rfind(|s| s.name == "rpc.call" && s.node == 0)
        .expect("traced call")
        .trace_id;
    let path: Vec<String> = log
        .critical_path(lossy_trace)
        .iter()
        .map(|s| format!("{}@n{}", s.name, s.node))
        .collect();
    println!("  critical path (lossy call): {}", path.join(" -> "));
    let out = std::path::Path::new("target").join("e9_trace.json");
    if cluster.export_chrome_trace(&out).is_ok() {
        println!(
            "  chrome trace written to {} (open in about:tracing)",
            out.display()
        );
    }
    println!();
}

fn e10() {
    println!("== E10: coherent proxy-side property caching ==");
    let run = |cache: bool| {
        let mut app = Application::new();
        rafda::classmodel::sample::build_figure2(app.universe_mut());
        let policy = StaticPolicy::new()
            .place("Y", Placement::Node(NodeId(1)))
            .default_statics(NodeId(0))
            .cache("Y", cache);
        let cluster = app
            .transform(&["RMI"])
            .unwrap()
            .deploy(2, 42, Box::new(policy));
        let y = cluster
            .new_instance(NodeId(0), "Y", 0, vec![Value::Int(3)])
            .unwrap();
        cluster.pin(NodeId(0), &y);
        let t0 = cluster.network().now();
        for _ in 0..8 {
            cluster
                .call_method(NodeId(0), y.clone(), "set_base", vec![Value::Int(1)])
                .unwrap();
            for _ in 0..8 {
                cluster
                    .call_method(NodeId(0), y.clone(), "get_base", vec![])
                    .unwrap();
            }
        }
        (
            cluster.network().stats().messages,
            (cluster.network().now() - t0).as_ns() / 1000,
            cluster.stats(),
        )
    };
    let (m_off, us_off, _) = run(false);
    let (m_on, us_on, stats) = run(true);
    println!("  reads:writes 8:1   cache off: {m_off} messages, {us_off} us (simulated)");
    println!(
        "  cache on: {m_on} messages, {us_on} us — {} hits / {} misses / {} invalidations",
        stats.cache_hits, stats.cache_misses, stats.cache_invalidations
    );
    println!(
        "  remote exchanges removed: {}%\n",
        100 * (m_off - m_on) / m_off.max(1)
    );
}

fn e11() {
    println!("== E11: crash-stop failover — k-replicated exports ==");
    // A counter whose owner we kill mid-run: 10 calls, crash, 10 more calls.
    let run = |k: u32| {
        let mut app = Application::new();
        let u = app.universe_mut();
        let c = u.declare("C", ClassKind::Class);
        let mut cb = ClassBuilder::new(u, c);
        let v = cb.field(Field::new("v", Ty::Int));
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(u, vec![], Some(mb.finish()));
        let mut mb = MethodBuilder::new(2);
        mb.load_this();
        mb.load_this().get_field(c, v);
        mb.load_local(1).add();
        mb.put_field(c, v);
        mb.load_this().get_field(c, v).ret_value();
        cb.method(u, "bump", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(u);
        let policy = StaticPolicy::new()
            .place("C", Placement::Node(NodeId(1)))
            .default_statics(NodeId(0))
            .replicate("C", k);
        let cluster = app
            .transform(&["RMI"])
            .unwrap()
            .deploy(3, 42, Box::new(policy));
        let obj = cluster.new_instance(NodeId(0), "C", 0, vec![]).unwrap();
        let mut outs = Vec::new();
        for _ in 0..10 {
            outs.push(cluster.call_method(NodeId(0), obj.clone(), "bump", vec![Value::Int(1)]));
        }
        cluster.crash(NodeId(1));
        for _ in 0..10 {
            outs.push(cluster.call_method(NodeId(0), obj.clone(), "bump", vec![Value::Int(1)]));
        }
        (outs, cluster.stats())
    };

    let (rep, rep_stats) = run(1);
    let ok = rep.iter().filter(|r| r.is_ok()).count();
    assert_eq!(ok, 20, "with replicate 1 every call must survive the crash");
    assert_eq!(
        rep.last().unwrap().as_ref().unwrap(),
        &Value::Int(20),
        "no acknowledged increment may be lost or double-applied"
    );
    assert!(
        rep_stats.failovers > 0,
        "the crash must be visible: {rep_stats}"
    );
    println!("  schedule: 10 calls -> crash owner (node 1) -> 10 calls, client on node 0");
    println!(
        "  replicate 1: {ok}/20 ok, final value 20, {} failovers / {} promotions / {} replica syncs",
        rep_stats.failovers, rep_stats.promotions, rep_stats.replica_syncs
    );

    let (bare, bare_stats) = run(0);
    let ok = bare.iter().filter(|r| r.is_ok()).count();
    assert_eq!(ok, 10, "without replication the post-crash calls must fail");
    let err = bare[10].as_ref().unwrap_err();
    let nf = err.net_failure().expect("typed network failure");
    assert_eq!(nf.kind, NetFailureKind::NodeCrashed(1));
    assert_eq!(bare_stats.failovers, 0);
    println!(
        "  replicate 0: {ok}/20 ok, first post-crash error: {} (typed, {} attempt)\n",
        err, nf.attempts
    );
}

fn e12() {
    println!("== E12: batched remote invocation — deferred void calls ==");
    // Write-heavy workload: each round fires 8 void `inc`s then reads the
    // total; the read is the synchronization point that flushes the batch.
    let run = |batch: bool| {
        let mut app = Application::new();
        let u = app.universe_mut();
        let c = u.declare("C", ClassKind::Class);
        let mut cb = ClassBuilder::new(u, c);
        let v = cb.field(Field::new("v", Ty::Int));
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(u, vec![], Some(mb.finish()));
        let mut mb = MethodBuilder::new(2);
        mb.load_this();
        mb.load_this().get_field(c, v);
        mb.load_local(1).add();
        mb.put_field(c, v);
        mb.ret();
        cb.method(u, "inc", vec![Ty::Int], Ty::Void, Some(mb.finish()));
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(c, v).ret_value();
        cb.method(u, "total", vec![], Ty::Int, Some(mb.finish()));
        cb.finish(u);
        let policy = StaticPolicy::new()
            .place("C", Placement::Node(NodeId(1)))
            .default_statics(NodeId(0))
            .batch("C", batch);
        let cluster = app
            .transform(&["RMI"])
            .unwrap()
            .deploy(2, 42, Box::new(policy));
        let obj = cluster.new_instance(NodeId(0), "C", 0, vec![]).unwrap();
        let m0 = cluster.network().stats().messages;
        let t0 = cluster.network().now();
        let mut total = Value::Int(0);
        for _ in 0..16 {
            for _ in 0..8 {
                cluster
                    .call_method(NodeId(0), obj.clone(), "inc", vec![Value::Int(1)])
                    .unwrap();
            }
            total = cluster
                .call_method(NodeId(0), obj.clone(), "total", vec![])
                .unwrap();
        }
        assert_eq!(total, Value::Int(128), "an increment was lost");
        (
            cluster.network().stats().messages - m0,
            cluster.network().now() - t0,
            cluster.stats(),
        )
    };

    let (off_msgs, off_t, off_stats) = run(false);
    let (on_msgs, on_t, on_stats) = run(true);
    assert_eq!(off_stats.batched_ops, 0, "batching off must be inert");
    assert_eq!(off_stats.flushes, 0, "batching off must be inert");
    assert!(
        on_msgs * 10 <= off_msgs * 6,
        "batching must save >= 40% of messages ({on_msgs} vs {off_msgs})"
    );
    println!("  workload: 16 rounds x (8 void incs + 1 total read), owner remote");
    println!("  batch off: {off_msgs} messages, {off_t} simulated");
    println!(
        "  batch on:  {on_msgs} messages, {on_t} simulated ({} deferred ops in {} flushes)\n",
        on_stats.batched_ops, on_stats.flushes
    );
}

fn e13() {
    println!("== E13: zero-copy wire fast path — signature interning & buffer reuse ==");
    // A chatty remote counter: every call repeats the same method signature,
    // which is exactly what per-link interning compresses. Wall-clock
    // throughput lives in the e13 bench (it asserts >= 2x); this report
    // prints only the deterministic wire-level counters.
    let mut app = Application::new();
    let u = app.universe_mut();
    let c = u.declare("C", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, c);
    let v = cb.field(Field::new("v", Ty::Int));
    let mut mb = MethodBuilder::new(1);
    mb.ret();
    cb.ctor(u, vec![], Some(mb.finish()));
    let mut mb = MethodBuilder::new(1);
    mb.load_this();
    mb.load_this().get_field(c, v);
    mb.const_int(1).add();
    mb.put_field(c, v);
    mb.load_this().get_field(c, v).ret_value();
    cb.method(u, "tick", vec![], Ty::Int, Some(mb.finish()));
    cb.finish(u);
    let policy = StaticPolicy::new()
        .place("C", Placement::Node(NodeId(1)))
        .default_statics(NodeId(0));
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(2, 42, Box::new(policy));
    let obj = cluster.new_instance(NodeId(0), "C", 0, vec![]).unwrap();
    let net = cluster.network();
    let t0 = net.stats().bytes;
    cluster
        .call_method(NodeId(0), obj.clone(), "tick", vec![])
        .unwrap();
    let first = net.stats().bytes - t0;
    let t1 = net.stats().bytes;
    for _ in 0..31 {
        cluster
            .call_method(NodeId(0), obj.clone(), "tick", vec![])
            .unwrap();
    }
    let repeat = (net.stats().bytes - t1) / 31;
    let stats = cluster.stats();
    assert!(
        repeat < first,
        "interned repeat calls must be smaller on the wire ({repeat} vs {first})"
    );
    assert!(stats.wire_buf_reuses > 0, "encode buffers must be pooled");
    println!("  workload: 32 identical remote calls over RMI, owner remote");
    println!("  bytes/exchange: {first} first call, {repeat} repeat calls (interned)");
    println!(
        "  signature table: {} defined, {} referenced; encode buffers reused {} times\n",
        stats.sig_defs, stats.sig_refs, stats.wire_buf_reuses
    );
}

/// The E14 counter class: `C { int v; C(int); int bump(int) }`.
fn e14_counter_app() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let c = u.declare("C", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, c);
    let v = cb.field(Field::new("v", Ty::Int));
    let mut mb = MethodBuilder::new(2);
    mb.load_this().load_local(1).put_field(c, v).ret();
    cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(c, v);
    mb.load_local(1).add();
    mb.put_field(c, v);
    mb.load_this().get_field(c, v).ret_value();
    cb.method(u, "bump", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(u);
    app
}

fn e14() {
    println!("== E14: reflective observability plane — metrics, monitors, introspection ==");
    // A cached, replicated counter under live monitors: mutations, cached
    // reads, then a crash-stop of the home node and a failover to its
    // promoted backup. The introspection object is itself a distributed
    // object — reading the cluster's stats goes over the normal RMI path.
    let mut app = e14_counter_app();
    declare_introspection(app.universe_mut());
    let policy = StaticPolicy::new()
        .place("C", Placement::Node(NodeId(1)))
        .place(INTROSPECTION_CLASS, Placement::Node(NodeId(2)))
        .default_statics(NodeId(0))
        .cache("C", true)
        .replicate("C", 1);
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 42, Box::new(policy));
    cluster.enable_monitors();
    let c = cluster
        .new_instance(NodeId(0), "C", 0, vec![Value::Int(5)])
        .unwrap();
    cluster.pin(NodeId(0), &c);
    for d in 0..4 {
        cluster
            .call_method(NodeId(0), c.clone(), "bump", vec![Value::Int(d)])
            .unwrap();
        for _ in 0..2 {
            cluster
                .call_method(NodeId(0), c.clone(), "get_v", vec![])
                .unwrap();
        }
    }
    cluster.crash(NodeId(1));
    cluster
        .call_method(NodeId(0), c.clone(), "bump", vec![Value::Int(1)])
        .unwrap();
    let after = cluster
        .call_method(NodeId(0), c.clone(), "get_v", vec![])
        .unwrap();
    assert_eq!(after, Value::Int(12), "failover preserved the counter");

    let violations = cluster.check_invariants();
    assert!(violations.is_empty(), "watchdogs fired: {violations:?}");
    println!("  monitors (stale-read, at-most-once, span-tree, replica-divergence): silent");
    for n in 0..3 {
        let s = cluster.node_stats(NodeId(n));
        println!(
            "  node{n}: {} calls served, {} cache hits, {} replica syncs, {} promotions",
            s.rpc_calls, s.cache_hits, s.replica_syncs, s.promotions
        );
    }

    // The same stats, read *through* the cluster: an introspection getter
    // served over RMI (and counted by the metrics it reports).
    let insp = cluster
        .new_instance(NodeId(0), INTROSPECTION_CLASS, 0, vec![])
        .unwrap();
    cluster
        .call_method(NodeId(0), insp.clone(), "refresh", vec![])
        .unwrap();
    let stats = cluster
        .call_method(NodeId(0), insp, "get_stats", vec![])
        .unwrap();
    println!(
        "  rafda.Introspection.get_stats() over RMI: {}",
        stats.as_str().unwrap_or("<not a string>")
    );

    // Deterministic exports: ci.sh diffs both files across same-seed runs.
    let prom = cluster.prometheus_text();
    let json = cluster.metrics_json();
    let prom_path = std::path::Path::new("target").join("e14_metrics.prom");
    let json_path = std::path::Path::new("target").join("e14_metrics.jsonl");
    if std::fs::write(&prom_path, &prom).is_ok() && std::fs::write(&json_path, &json).is_ok() {
        println!(
            "  exports: {} ({} lines), {} ({} lines)",
            prom_path.display(),
            prom.lines().count(),
            json_path.display(),
            json.lines().count()
        );
    }

    // The canary, for contrast: skip one cache tombstone during a
    // migration and the stale-read watchdog pins the offending exchange.
    let policy = StaticPolicy::new()
        .place("C", Placement::Node(NodeId(1)))
        .default_statics(NodeId(0))
        .cache("C", true);
    let canary = e14_counter_app()
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 42, Box::new(policy));
    canary.enable_monitors();
    let c = canary
        .new_instance(NodeId(0), "C", 0, vec![Value::Int(5)])
        .unwrap();
    canary.pin(NodeId(0), &c);
    for _ in 0..2 {
        canary
            .call_method(NodeId(0), c.clone(), "get_v", vec![])
            .unwrap();
    }
    let mut home = None;
    canary.vm(NodeId(1)).with_heap(|heap| {
        for h in heap.handles() {
            if let Some(class) = heap.class_of(h) {
                if canary.universe().class(class).name == "C_O_Local" {
                    home = Some(h);
                }
            }
        }
    });
    canary.debug_skip_next_tombstone();
    canary
        .migrate(NodeId(1), home.expect("counter home"), NodeId(2))
        .unwrap();
    canary
        .call_method(NodeId(0), c.clone(), "get_v", vec![])
        .unwrap();
    let caught = canary.monitor_violations();
    assert_eq!(caught.len(), 1, "the canary must be caught: {caught:?}");
    println!(
        "  injected canary caught: [{}] {}\n",
        caught[0].monitor, caught[0].message
    );
}

/// The E15 keyed store: `S { int k; int v; S(int k); int put(int d) }`.
fn e15_store_app() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let s = u.declare("S", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, s);
    let k = cb.field(Field::new("k", Ty::Int));
    let v = cb.field(Field::new("v", Ty::Int));
    let mut mb = MethodBuilder::new(2);
    mb.load_this().load_local(1).put_field(s, k).ret();
    cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(s, v);
    mb.load_local(1).add();
    mb.put_field(s, v);
    mb.load_this().get_field(s, v).ret_value();
    cb.method(u, "put", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(u);
    app
}

fn e15() {
    println!("== E15: policy-driven sharding & replica reads — placement under skew ==");
    // A 16-key store takes the same Zipf-skewed, read-mostly stream under
    // two placement policies; the only variable is where instances live
    // and where getters are served. ci.sh diffs this whole section across
    // same-seed runs, so a hash-order or wall-clock leak anywhere in the
    // shard map, replica-read path or rebalance tick shows up as a diff.
    const KEYS: usize = 16;
    let ops = rafda::corpus::workload::ZipfWorkload::new(42, KEYS, 1.1).sequence(512);

    let run = |policy: StaticPolicy| -> (u64, u64, u64, Vec<Value>) {
        let cluster = e15_store_app()
            .transform(&["RMI"])
            .unwrap()
            .deploy(4, 42, Box::new(policy));
        cluster.enable_monitors();
        let objs: Vec<Value> = (0..KEYS)
            .map(|i| {
                let o = cluster
                    .new_instance(NodeId(0), "S", 0, vec![Value::Int(i as i32)])
                    .unwrap();
                cluster.pin(NodeId(0), &o);
                cluster
                    .call_method(NodeId(0), o.clone(), "put", vec![Value::Int(0)])
                    .unwrap();
                o
            })
            .collect();
        let m0 = cluster.network().stats().messages;
        let mut latencies: Vec<u64> = Vec::with_capacity(ops.len());
        for (i, &key) in ops.iter().enumerate() {
            let s0 = cluster.network().now().as_ns();
            let (method, args) = if i % 32 == 31 {
                ("put", vec![Value::Int(1)])
            } else {
                ("get_v", vec![])
            };
            cluster
                .call_method(NodeId(0), objs[key].clone(), method, args)
                .unwrap();
            latencies.push(cluster.network().now().as_ns() - s0);
        }
        let messages = cluster.network().stats().messages - m0;
        let finals: Vec<Value> = objs
            .iter()
            .map(|o| {
                cluster
                    .call_method(NodeId(0), o.clone(), "get_v", vec![])
                    .unwrap()
            })
            .collect();
        assert!(cluster.check_invariants().is_empty(), "a monitor fired");
        latencies.sort_unstable();
        let p95 = latencies[latencies.len() * 95 / 100];
        (messages, p95, cluster.stats().replica_reads, finals)
    };

    let single = run(StaticPolicy::new()
        .place("S", Placement::Node(NodeId(1)))
        .replicate("S", 1));
    let sharded = run(StaticPolicy::new()
        .shard("S", "get_k", 8)
        .replicate("S", 1)
        .replica_reads("S", true));
    for (name, o) in [
        ("single-owner", &single),
        ("sharded+replica-reads", &sharded),
    ] {
        println!(
            "  {name:<22} {:>5} messages, p95 {:>7} ns, {:>4} replica reads",
            o.0, o.1, o.2
        );
    }
    assert_eq!(single.3, sharded.3, "placement changed observable values");
    assert!(
        sharded.0 * 10 <= single.0 * 7,
        "sharding must cut messages >= 30%: {} vs {}",
        sharded.0,
        single.0
    );

    // The adaptation tick: skewed call counts move the warm shard off the
    // hot node, deterministically, and converge in one step.
    let cluster = e15_store_app().transform(&["RMI"]).unwrap().deploy(
        2,
        42,
        Box::new(StaticPolicy::new().shard("S", "get_k", 4)),
    );
    let driver = NodeId(1);
    let mut on_zero = Vec::new();
    for key in 0..KEYS as i32 {
        let o = cluster
            .new_instance(driver, "S", 0, vec![Value::Int(key)])
            .unwrap();
        cluster.pin(driver, &o);
        if cluster.location_of(driver, &o) == Some(NodeId(0)) && on_zero.len() < 2 {
            on_zero.push(o);
        }
    }
    for _ in 0..20 {
        cluster
            .call_method(driver, on_zero[0].clone(), "put", vec![Value::Int(1)])
            .unwrap();
    }
    for _ in 0..4 {
        cluster
            .call_method(driver, on_zero[1].clone(), "put", vec![Value::Int(1)])
            .unwrap();
    }
    for event in cluster.rebalance_shards(&AffinityConfig::default()) {
        println!("  rebalance tick: {event}");
    }
    assert_eq!(cluster.stats().shard_rebalances, 1, "one shard moves");
    assert!(
        cluster
            .rebalance_shards(&AffinityConfig::default())
            .is_empty(),
        "second tick must converge"
    );
    println!("  second tick: converged (no-op)\n");
}

fn e16() {
    use rafda::corpus::ops::{generate_churn, ChurnConfig};
    use rafda::soak::run_schedule;
    println!("== E16: production-day soak (all features, oracle-exact) ==");
    let cfg = ChurnConfig::production_day(7, 1_500);
    let schedule = generate_churn(&cfg);
    let report = run_schedule(&cfg, &schedule).expect("the soak must match the oracle");
    assert!(report.clean(), "{report}");
    for line in report.to_string().lines() {
        println!("  {line}");
    }
    println!("  gate depth: cargo test --test soak (SOAK_OPS / SOAK_SEEDS / SOAK_SMOKE)\n");
}

fn main() {
    println!("RAFDA reproduction — consolidated experiment report\n");
    e1();
    e3();
    e4();
    e5();
    e6();
    e7();
    e7_retry();
    e9();
    e10();
    e11();
    e12();
    e13();
    e14();
    e15();
    e16();
    println!("full precision: cargo bench --workspace (see EXPERIMENTS.md)");
}
