//! The paper's *other* promised extension (Section 4): "This transformed
//! version can be extended while retaining program semantics in order to
//! provide requirements such as distribution **or persistence**."
//!
//! Because the transformation flattens every object into interface-typed
//! slots, state capture needs no per-class code: this example snapshots a
//! live (cyclic!) object graph, keeps working, and later restores the
//! snapshot on a *different node* — with references across the distribution
//! boundary reconnected.
//!
//! Run with: `cargo run -p rafda --example persistence`

use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::{Application, LocalPolicy, NodeId, Ty, Value};

fn build() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let acct = u.declare("Account", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, acct);
    let bal = cb.field(Field::new("balance", Ty::Int));
    let peer = cb.field(Field::new("peer", Ty::Object(acct)));
    let mut mb = MethodBuilder::new(2);
    mb.load_this().load_local(1).put_field(acct, bal).ret();
    cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
    // void transfer(int amount) { balance -= amount; peer.receive(amount); }
    let receive_sig = u.sig("receive", vec![Ty::Int]);
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(acct, bal);
    mb.load_local(1).sub();
    mb.put_field(acct, bal);
    mb.load_this().get_field(acct, peer);
    mb.load_local(1);
    mb.invoke(receive_sig, 1);
    mb.pop();
    mb.ret();
    cb.method(u, "transfer", vec![Ty::Int], Ty::Void, Some(mb.finish()));
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(acct, bal);
    mb.load_local(1).add();
    mb.put_field(acct, bal);
    mb.ret();
    cb.method(u, "receive", vec![Ty::Int], Ty::Void, Some(mb.finish()));
    cb.finish(u);
    app
}

fn main() {
    let cluster = build().transform(&["RMI"]).expect("transformable").deploy(
        2,
        9,
        Box::new(LocalPolicy::default()),
    );
    let n0 = NodeId(0);
    let n1 = NodeId(1);

    // Two accounts referencing each other (a cycle).
    let alice = cluster
        .new_instance(n0, "Account", 0, vec![Value::Int(100)])
        .unwrap();
    let bob = cluster
        .new_instance(n0, "Account", 0, vec![Value::Int(50)])
        .unwrap();
    cluster
        .call_method(n0, alice.clone(), "set_peer", vec![bob.clone()])
        .unwrap();
    cluster
        .call_method(n0, bob.clone(), "set_peer", vec![alice.clone()])
        .unwrap();
    cluster
        .call_method(n0, alice.clone(), "transfer", vec![Value::Int(30)])
        .unwrap();
    let show = |tag: &str, node: NodeId, a: &Value, b: &Value| {
        let ba = cluster
            .call_method(node, a.clone(), "get_balance", vec![])
            .unwrap();
        let bb = cluster
            .call_method(node, b.clone(), "get_balance", vec![])
            .unwrap();
        println!("{tag}: alice={ba} bob={bb}");
    };
    show("before snapshot", n0, &alice, &bob);

    // Checkpoint the whole graph (cycle included) …
    let snap = cluster
        .snapshot(n0, alice.as_ref_handle().unwrap())
        .unwrap();
    println!("\n{snap}");

    // … keep mutating the live graph …
    cluster
        .call_method(n0, alice.clone(), "transfer", vec![Value::Int(70)])
        .unwrap();
    show("after more transfers", n0, &alice, &bob);

    // … and restore the checkpoint on the OTHER node.
    let restored_alice = cluster.restore(n1, &snap).unwrap();
    let restored_bob = cluster
        .call_method(n1, restored_alice.clone(), "get_peer", vec![])
        .unwrap();
    show("restored on node 1", n1, &restored_alice, &restored_bob);
    // The restored cycle is functional: transfers work on the copy.
    cluster
        .call_method(n1, restored_bob.clone(), "transfer", vec![Value::Int(10)])
        .unwrap();
    show("after transfer on copy", n1, &restored_alice, &restored_bob);
    show("original unchanged   ", n0, &alice, &bob);
}
