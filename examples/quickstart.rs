//! Quickstart: transform the paper's Figure 2 sample class and watch the
//! same program run (a) untransformed, (b) transformed in one address
//! space, and (c) distributed over a two-node cluster — with no source
//! changes between (b) and (c), only policy.
//!
//! Run with: `cargo run -p rafda --example quickstart`

use rafda::classmodel::{pretty, sample};
use rafda::{Application, NodeId, StaticPolicy, Value};

fn main() {
    // ------------------------------------------------------------------
    // 1. An ordinary, non-distributed program: the paper's Figure 2.
    // ------------------------------------------------------------------
    let mut app = Application::new();
    let ids = sample::build_figure2(app.universe_mut());
    println!("== Original class X (Figure 2) ==");
    println!("{}", pretty::declaration(app.universe(), ids.x));

    // Original semantics: X.p(6) = new Z(Y.K).q(6) = 6 * 7.
    let vm = rafda::Vm::new(std::sync::Arc::new(app.universe().clone()));
    let original = vm
        .call_static_by_name("X", "p", vec![Value::Int(6)])
        .expect("original program runs");
    println!("original X.p(6) = {original}\n");

    // ------------------------------------------------------------------
    // 2. Transform: interfaces, local impls, proxies, factories.
    // ------------------------------------------------------------------
    let transformed = app
        .transform(&["RMI", "SOAP"])
        .expect("figure 2 is fully transformable");
    println!("== Transformation report ==");
    println!("{}", transformed.outcome().report);
    println!("== Extracted interface X_O_Int (Figure 3) ==");
    let u = transformed.universe();
    println!("{}", pretty::declaration(u, u.by_name("X_O_Int").unwrap()));
    println!("== Generated factory X_C_Factory (Figure 5) ==");
    println!(
        "{}",
        pretty::declaration(u, u.by_name("X_C_Factory").unwrap())
    );

    // ------------------------------------------------------------------
    // 3. Deploy distributed: statics of every class live on node 1; the
    //    driver runs on node 0. Pure policy — no code changes.
    // ------------------------------------------------------------------
    let policy = StaticPolicy::new().default_statics(NodeId(1));
    let cluster = transformed.deploy(2, 42, Box::new(policy));
    let r = cluster
        .call_static(NodeId(0), "X", "p", vec![Value::Int(6)])
        .expect("distributed program runs");
    println!("== Distributed run ==");
    println!("distributed X.p(6) = {r}  (same answer, computed on node 1)");
    let net = cluster.network();
    let stats = net.stats();
    println!(
        "network: {} messages, {} bytes, simulated time {}",
        stats.messages,
        stats.bytes,
        net.now()
    );
    assert_eq!(original, r);

    // Instances too: a Y on node 0, an X holding it, everything transparent.
    let y = cluster
        .new_instance(NodeId(0), "Y", 0, vec![Value::Int(3)])
        .unwrap();
    let x = cluster.new_instance(NodeId(0), "X", 0, vec![y]).unwrap();
    let m = cluster
        .call_method(NodeId(0), x, "m", vec![Value::Long(4)])
        .unwrap();
    println!("new X(new Y(3)).m(4) = {m}");
    assert_eq!(m, Value::Int(7));
}
