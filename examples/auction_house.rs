//! The paper's motivating situation, end to end: an auction house written
//! as an ordinary OO program (no middleware types, no remote interfaces,
//! no design-time distribution decisions) is transformed and then deployed
//! three different ways — all producing identical results:
//!
//! 1. original, untransformed, single address space;
//! 2. transformed, still single address space;
//! 3. distributed: catalogue on node 1, bidders on node 2, audit statics on
//!    node 1, driver on node 0 — chosen purely by policy.
//!
//! Run with: `cargo run -p rafda --example auction_house`

use rafda::corpus::{build_auction_house, ObserverHooks};
use rafda::{Application, NodeId, StaticPolicy, Value};

fn build() -> Application {
    let mut app = Application::new();
    let obs = app.observer();
    build_auction_house(
        app.universe_mut(),
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
    );
    app
}

fn main() {
    let seed = 100;

    // 1. Original program.
    let original = build().run_original("AuctionMain", "main", vec![Value::Int(seed)]);
    println!("== 1. original (no transformation) ==");
    print!("{original}");

    // 2. Transformed, local.
    let rt = build().transform(&["RMI", "SOAP"]).unwrap().deploy_local();
    let local = rt.run_observed("AuctionMain", "main", vec![Value::Int(seed)]);
    println!("\n== 2. transformed, single address space ==");
    print!("{local}");

    // 3. Distributed by policy document.
    let policy = StaticPolicy::parse(
        "default protocol RMI\n\
         default statics node1\n\
         class Item place node1\n\
         class Auction place node1\n\
         class Bidder place node2\n\
         class Bidder protocol SOAP\n",
    )
    .unwrap();
    let cluster = build()
        .transform(&["RMI", "SOAP"])
        .unwrap()
        .deploy(3, 7, Box::new(policy));
    let distributed =
        cluster.run_observed(NodeId(0), "AuctionMain", "main", vec![Value::Int(seed)]);
    println!("\n== 3. distributed (items on node1, bidders on node2) ==");
    print!("{distributed}");
    let stats = cluster.network().stats();
    println!(
        "\nnetwork: {} messages, {} bytes, {} elapsed",
        stats.messages,
        stats.bytes,
        cluster.network().now()
    );

    assert_eq!(original, local, "transformation preserves semantics");
    assert_eq!(original, distributed, "distribution preserves semantics");
    println!("\nall three runs produced identical observable behaviour ✓");
}
