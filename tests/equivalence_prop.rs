//! Experiment **E7**: property-based semantic equivalence.
//!
//! For randomly generated applications, the observable trace of
//!
//! 1. the original program,
//! 2. the transformed program in a single address space, and
//! 3. the transformed program distributed over three nodes
//!
//! must be identical — the paper's "semantically equivalent applications"
//! claim (Section 1), with clause "modulo network failure" exercised by the
//! failure-injection tests.

use proptest::prelude::*;
use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::corpus::{generate_app, AppSpec, ObserverHooks};
use rafda::{Application, NodeId, Placement, StaticPolicy, Trace, Ty, Value};

fn build_app(spec: &AppSpec) -> Application {
    let mut app = Application::new();
    let obs = app.observer();
    generate_app(
        app.universe_mut(),
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
        spec,
    );
    app
}

fn original_trace(spec: &AppSpec, arg: i32) -> Trace {
    build_app(spec).run_original("Driver", "main", vec![Value::Int(arg)])
}

fn local_trace(spec: &AppSpec, arg: i32) -> Trace {
    let rt = build_app(spec).transform(&["RMI"]).unwrap().deploy_local();
    rt.run_observed("Driver", "main", vec![Value::Int(arg)])
}

/// Scatter the chain classes round-robin over three nodes, statics on
/// node 2, and vary the protocol with the seed. With `batch` on, every
/// class defers its void calls (`mutate`, the generated setters, `init$k`)
/// onto outcall queues; the classes are placed with an offset of one so the
/// chain head — the object the driver mutates — is remote from the driver
/// and batching actually engages.
fn distributed_trace_with(spec: &AppSpec, arg: i32, batch: bool) -> (Trace, u64, u64) {
    let proto = ["RMI", "SOAP", "CORBA"][(spec.seed % 3) as usize];
    let offset = usize::from(batch);
    let mut policy = StaticPolicy::new()
        .default_statics(NodeId(2))
        .default_protocol(proto)
        .default_batch(batch);
    for i in 0..spec.classes {
        policy = policy.place(
            &format!("C{i}"),
            Placement::Node(NodeId(((i + offset) % 3) as u32)),
        );
    }
    let cluster = build_app(spec)
        .transform(&["RMI", "SOAP", "CORBA"])
        .unwrap()
        .deploy(3, spec.seed, Box::new(policy));
    cluster.enable_monitors();
    let trace = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(arg)]);
    assert_eq!(cluster.check_invariants(), vec![], "monitor violation");
    (
        trace,
        cluster.network().stats().messages,
        cluster.stats().batched_ops,
    )
}

fn distributed_trace(spec: &AppSpec, arg: i32) -> (Trace, u64) {
    let (trace, messages, _) = distributed_trace_with(spec, arg, false);
    (trace, messages)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn original_equals_transformed_local(
        seed in 1u64..500,
        classes in 2usize..8,
        fields in 1usize..4,
        statics in any::<bool>(),
        inheritance in any::<bool>(),
        arrays in any::<bool>(),
        arg in -50i32..50,
    ) {
        let spec = AppSpec { classes, int_fields: fields, statics, inheritance, arrays, seed };
        let original = original_trace(&spec, arg);
        let local = local_trace(&spec, arg);
        prop_assert!(!original.is_empty());
        prop_assert_eq!(original, local);
    }

    #[test]
    fn original_equals_distributed(
        seed in 1u64..500,
        classes in 2usize..7,
        statics in any::<bool>(),
        inheritance in any::<bool>(),
        arrays in any::<bool>(),
        arg in -50i32..50,
    ) {
        let spec = AppSpec { classes, int_fields: 2, statics, inheritance, arrays, seed };
        let original = original_trace(&spec, arg);
        let (distributed, messages) = distributed_trace(&spec, arg);
        prop_assert_eq!(&original, &distributed,
            "seed={} classes={} statics={}", seed, classes, statics);
        // With round-robin placement, real distribution must occur.
        prop_assert!(messages > 0, "nothing went remote");
    }

    /// The tentpole's semantic claim: deferring void calls onto batch
    /// queues and flushing them at synchronization points is invisible to
    /// the program — every value-returning call flushes first, so the
    /// observable trace equals the original's exactly.
    #[test]
    fn original_equals_distributed_with_batching(
        seed in 1u64..500,
        classes in 2usize..7,
        statics in any::<bool>(),
        inheritance in any::<bool>(),
        arrays in any::<bool>(),
        arg in -50i32..50,
    ) {
        let spec = AppSpec { classes, int_fields: 2, statics, inheritance, arrays, seed };
        let original = original_trace(&spec, arg);
        let (batched, messages, batched_ops) = distributed_trace_with(&spec, arg, true);
        prop_assert_eq!(&original, &batched,
            "seed={} classes={} statics={}", seed, classes, statics);
        prop_assert!(messages > 0, "nothing went remote");
        // The chain head is remote from the driver, so at least its
        // `init$0` and `mutate` must actually have been deferred.
        prop_assert!(batched_ops >= 2, "batching never engaged: {} ops", batched_ops);
    }
}

/// One event of the crash-equivalence schedule below.
#[derive(Debug, Clone, Copy)]
enum FoEvt {
    /// Call the counter on node 1 with this delta.
    CallA(i8),
    /// Call the counter on node 2 with this delta.
    CallB(i8),
    /// Crash-stop and immediately restart node 1 or 2 (amnesia: the restart
    /// wipes every export).
    Bounce(u8),
}

fn arb_fo_evt() -> impl Strategy<Value = FoEvt> {
    prop_oneof![
        4 => (-9i8..10).prop_map(FoEvt::CallA),
        4 => (-9i8..10).prop_map(FoEvt::CallB),
        2 => (1u8..3).prop_map(FoEvt::Bounce),
    ]
}

/// Two counter classes, `CA` and `CB`, so each gets its own placement.
fn two_counter_app() -> Application {
    let mut app = Application::new();
    for name in ["CA", "CB"] {
        let u = app.universe_mut();
        let c = u.declare(name, ClassKind::Class);
        let mut cb = ClassBuilder::new(u, c);
        let v = cb.field(Field::new("v", Ty::Int));
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(u, vec![], Some(mb.finish()));
        let mut mb = MethodBuilder::new(2);
        mb.load_this();
        mb.load_this().get_field(c, v);
        mb.load_local(1).add();
        mb.put_field(c, v);
        mb.load_this().get_field(c, v).ret_value();
        cb.method(u, "add", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    }
    app
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Experiment **E11**'s property form: with `replicate 1`, a random
    /// crash/restart schedule is *observationally invisible* — the sequence
    /// of returned values is identical to the crash-free run of the same
    /// schedule. This is the paper's equivalence claim extended across the
    /// "modulo network failure" clause: replication discharges the modulo.
    #[test]
    fn crash_restart_schedule_is_invisible_with_replication(
        evts in prop::collection::vec(arb_fo_evt(), 1..40),
        seed in 0u64..500,
    ) {
        let run = |faults: bool| -> Vec<Value> {
            let policy = StaticPolicy::new()
                .default_statics(NodeId(0))
                .place("CA", Placement::Node(NodeId(1)))
                .place("CB", Placement::Node(NodeId(2)))
                .replicate("CA", 1)
                .replicate("CB", 1);
            let cluster = two_counter_app()
                .transform(&["RMI"])
                .unwrap()
                .deploy(3, seed, Box::new(policy));
            cluster.enable_monitors();
            let a = cluster.new_instance(NodeId(0), "CA", 0, vec![]).unwrap();
            let b = cluster.new_instance(NodeId(0), "CB", 0, vec![]).unwrap();
            let mut out = Vec::new();
            for evt in &evts {
                match *evt {
                    FoEvt::CallA(d) => out.push(
                        cluster
                            .call_method(NodeId(0), a.clone(), "add", vec![Value::Int(d.into())])
                            .unwrap(),
                    ),
                    FoEvt::CallB(d) => out.push(
                        cluster
                            .call_method(NodeId(0), b.clone(), "add", vec![Value::Int(d.into())])
                            .unwrap(),
                    ),
                    FoEvt::Bounce(n) => {
                        if faults {
                            cluster.crash(NodeId(u32::from(n)));
                            cluster.restart(NodeId(u32::from(n)));
                        }
                    }
                }
            }
            // Final probes: both objects survived the whole schedule.
            for c in [&a, &b] {
                out.push(
                    cluster
                        .call_method(NodeId(0), c.clone(), "add", vec![Value::Int(0)])
                        .unwrap(),
                );
            }
            assert_eq!(cluster.check_invariants(), vec![], "monitor violation");
            out
        };
        let clean = run(false);
        let crashy = run(true);
        prop_assert_eq!(&clean, &crashy, "a crash/restart changed an observable value");
    }
}

#[test]
fn deep_chain_equivalence() {
    // A longer chain than the proptest range, as a fixed regression case.
    let spec = AppSpec {
        inheritance: true,
        arrays: true,
        classes: 16,
        int_fields: 3,
        statics: true,
        seed: 0xBEEF,
    };
    let original = original_trace(&spec, 17);
    let local = local_trace(&spec, 17);
    let (distributed, _) = distributed_trace(&spec, 17);
    assert_eq!(original, local);
    assert_eq!(original, distributed);
    // 16-class chain with statics on every 3rd class: 2 compute sweeps +
    // 6 bump calls + 4 subclass probes = 12 events.
    assert_eq!(original.len(), 12);
}
