//! Experiment **E7**: property-based semantic equivalence.
//!
//! For randomly generated applications, the observable trace of
//!
//! 1. the original program,
//! 2. the transformed program in a single address space, and
//! 3. the transformed program distributed over three nodes
//!
//! must be identical — the paper's "semantically equivalent applications"
//! claim (Section 1), with clause "modulo network failure" exercised by the
//! failure-injection tests.

use proptest::prelude::*;
use rafda::corpus::{generate_app, AppSpec, ObserverHooks};
use rafda::{Application, NodeId, Placement, StaticPolicy, Trace, Value};

fn build_app(spec: &AppSpec) -> Application {
    let mut app = Application::new();
    let obs = app.observer();
    generate_app(
        app.universe_mut(),
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
        spec,
    );
    app
}

fn original_trace(spec: &AppSpec, arg: i32) -> Trace {
    build_app(spec).run_original("Driver", "main", vec![Value::Int(arg)])
}

fn local_trace(spec: &AppSpec, arg: i32) -> Trace {
    let rt = build_app(spec).transform(&["RMI"]).unwrap().deploy_local();
    rt.run_observed("Driver", "main", vec![Value::Int(arg)])
}

/// Scatter the chain classes round-robin over three nodes, statics on
/// node 2, and vary the protocol with the seed.
fn distributed_trace(spec: &AppSpec, arg: i32) -> (Trace, u64) {
    let proto = ["RMI", "SOAP", "CORBA"][(spec.seed % 3) as usize];
    let mut policy = StaticPolicy::new()
        .default_statics(NodeId(2))
        .default_protocol(proto);
    for i in 0..spec.classes {
        policy = policy.place(&format!("C{i}"), Placement::Node(NodeId((i % 3) as u32)));
    }
    let cluster = build_app(spec)
        .transform(&["RMI", "SOAP", "CORBA"])
        .unwrap()
        .deploy(3, spec.seed, Box::new(policy));
    let trace = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(arg)]);
    (trace, cluster.network().stats().messages)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn original_equals_transformed_local(
        seed in 1u64..500,
        classes in 2usize..8,
        fields in 1usize..4,
        statics in any::<bool>(),
        inheritance in any::<bool>(),
        arrays in any::<bool>(),
        arg in -50i32..50,
    ) {
        let spec = AppSpec { classes, int_fields: fields, statics, inheritance, arrays, seed };
        let original = original_trace(&spec, arg);
        let local = local_trace(&spec, arg);
        prop_assert!(!original.is_empty());
        prop_assert_eq!(original, local);
    }

    #[test]
    fn original_equals_distributed(
        seed in 1u64..500,
        classes in 2usize..7,
        statics in any::<bool>(),
        inheritance in any::<bool>(),
        arrays in any::<bool>(),
        arg in -50i32..50,
    ) {
        let spec = AppSpec { classes, int_fields: 2, statics, inheritance, arrays, seed };
        let original = original_trace(&spec, arg);
        let (distributed, messages) = distributed_trace(&spec, arg);
        prop_assert_eq!(&original, &distributed,
            "seed={} classes={} statics={}", seed, classes, statics);
        // With round-robin placement, real distribution must occur.
        prop_assert!(messages > 0, "nothing went remote");
    }
}

#[test]
fn deep_chain_equivalence() {
    // A longer chain than the proptest range, as a fixed regression case.
    let spec = AppSpec {
        inheritance: true,
        arrays: true,
        classes: 16,
        int_fields: 3,
        statics: true,
        seed: 0xBEEF,
    };
    let original = original_trace(&spec, 17);
    let local = local_trace(&spec, 17);
    let (distributed, _) = distributed_trace(&spec, 17);
    assert_eq!(original, local);
    assert_eq!(original, distributed);
    // 16-class chain with statics on every 3rd class: 2 compute sweeps +
    // 6 bump calls + 4 subclass probes = 12 events.
    assert_eq!(original.len(), 12);
}
