//! Crash-stop failover: k-replicated exports survive the crash of their
//! owner with no lost state, clients re-home deterministically to the
//! lowest-numbered live replica, and unreplicated objects fail with a
//! *typed* error — never a hang, a panic or a silently wrong value.

use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::vm::Handle;
use rafda::{
    Application, Cluster, NetFailureKind, NodeId, Placement, RuntimeStats, StaticPolicy, Ty, Value,
};

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);
const N3: NodeId = NodeId(3);

/// A counter class `C { int v; C(int); int bump(int d) }` — `v` becomes a
/// `get_v`/`set_v` property pair under transformation.
fn counter_app() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let c = u.declare("C", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, c);
    let v = cb.field(Field::new("v", Ty::Int));
    let mut mb = MethodBuilder::new(2);
    mb.load_this().load_local(1).put_field(c, v).ret();
    cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
    // int bump(int d) { v = v + d; return v; }
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(c, v);
    mb.load_local(1).add();
    mb.put_field(c, v);
    mb.load_this().get_field(c, v).ret_value();
    cb.method(u, "bump", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(u);
    app
}

/// Deploy `C` on node 1 over `nodes` nodes with replication factor `k`,
/// and create one instance (initial value 5) from `client`.
fn deployed(nodes: u32, k: u32, client: NodeId, seed: u64) -> (Cluster, Value) {
    let policy = StaticPolicy::new()
        .place("C", Placement::Node(N1))
        .default_statics(N0)
        .replicate("C", k);
    let cluster = counter_app()
        .transform(&["RMI"])
        .unwrap()
        .deploy(nodes, seed, Box::new(policy));
    let c = cluster
        .new_instance(client, "C", 0, vec![Value::Int(5)])
        .unwrap();
    cluster.pin(client, &c);
    (cluster, c)
}

fn bump(cluster: &Cluster, node: NodeId, c: &Value, d: i32) -> Result<Value, rafda::RuntimeError> {
    cluster.call_method(node, c.clone(), "bump", vec![Value::Int(d)])
}

/// The home (`C_O_Local`) handle of the single counter instance on `node`.
fn home_handle(cluster: &Cluster, node: NodeId) -> Handle {
    let mut found = None;
    cluster.vm(node).with_heap(|heap| {
        for h in heap.handles() {
            if let Some(class) = heap.class_of(h) {
                if cluster.universe().class(class).name == "C_O_Local" {
                    found = Some(h);
                }
            }
        }
    });
    found.expect("counter home")
}

#[test]
fn failover_to_replica_preserves_every_acknowledged_mutation() {
    let (cluster, c) = deployed(3, 1, N0, 11);
    assert_eq!(bump(&cluster, N0, &c, 2).unwrap(), Value::Int(7));
    assert_eq!(bump(&cluster, N0, &c, 3).unwrap(), Value::Int(10));
    let before = cluster.stats();
    assert!(before.replica_syncs > 0, "owner must ship state: {before}");

    cluster.crash(N1);
    // The next call re-homes to the lowest-id live replica (node 0) and
    // sees every mutation the dead owner acknowledged.
    assert_eq!(bump(&cluster, N0, &c, 1).unwrap(), Value::Int(11));
    assert_eq!(
        cluster.location_of(N0, &c),
        Some(N0),
        "promotion must pick the lowest-numbered live replica"
    );
    // No double apply, no lost update — a zero-delta probe reads the same.
    assert_eq!(bump(&cluster, N0, &c, 0).unwrap(), Value::Int(11));

    let stats = cluster.stats();
    assert_eq!(stats.failovers, 1, "{stats}");
    assert_eq!(stats.promotions, 1, "{stats}");
    assert!(
        stats.net_failures >= 1,
        "the exchange against the dead owner is still a failure: {stats}"
    );
}

#[test]
fn failover_emits_a_span_chained_to_the_failed_exchange() {
    let (cluster, c) = deployed(3, 1, N0, 12);
    bump(&cluster, N0, &c, 1).unwrap();
    cluster.crash(N1);
    bump(&cluster, N0, &c, 1).unwrap();
    let log = cluster.span_log();
    let fo = log
        .spans()
        .iter()
        .find(|s| s.name == "rpc.failover")
        .expect("failover span");
    assert_eq!(fo.attr_str("class"), Some("C"));
    let prior = fo.retry_of.expect("chained to the failed exchange");
    let failed = log
        .spans()
        .iter()
        .find(|s| s.span_id == prior)
        .expect("the failed exchange span exists");
    assert_eq!(failed.name, "rpc.call");
    // The promotion itself is served and visible.
    assert!(log.spans().iter().any(|s| s.name == "serve.promote"));
    assert!(log.spans().iter().any(|s| s.name == "serve.replica"));
}

#[test]
fn unreplicated_crash_surfaces_typed_unreachable_everywhere() {
    let (cluster, c) = deployed(3, 0, N0, 13);
    assert_eq!(bump(&cluster, N0, &c, 1).unwrap(), Value::Int(6));
    let owner_handle = home_handle(&cluster, N1);
    cluster.crash(N1);

    // call_method: typed, fails fast, no failover attempted.
    let err = bump(&cluster, N0, &c, 1).unwrap_err();
    let nf = err.net_failure().expect("typed network failure");
    assert_eq!(nf.kind, NetFailureKind::NodeCrashed(1));
    assert_eq!(nf.attempts, 1, "crashes are not retried");

    // pull_local: the Fetch against the dead owner is typed too.
    let err = cluster
        .pull_local(N0, c.as_ref_handle().unwrap())
        .unwrap_err();
    assert_eq!(
        err.net_failure().map(|nf| nf.kind),
        Some(NetFailureKind::NodeCrashed(1))
    );

    // migrate: the crashed node cannot ship its state anywhere.
    let err = cluster.migrate(N1, owner_handle, N2).unwrap_err();
    assert!(err.net_failure().is_some(), "{err}");

    let stats = cluster.stats();
    assert_eq!(stats.failovers, 0, "{stats}");
    assert_eq!(stats.promotions, 0, "{stats}");
}

#[test]
fn restart_does_not_resurrect_unreplicated_state() {
    let (cluster, c) = deployed(3, 0, N0, 14);
    assert_eq!(bump(&cluster, N0, &c, 5).unwrap(), Value::Int(10));
    cluster.crash(N1);
    cluster.restart(N1);
    // The restarted node lost its exports: the stale proxy gets a typed
    // fault — never the pre-crash value, never a fresh object.
    let err = bump(&cluster, N0, &c, 1).unwrap_err();
    assert!(err.to_string().contains("unknown object"), "{err}");
    // New instances work and start from their own constructor state; the
    // preserved export-id counter keeps old and new ids disjoint.
    let fresh = cluster
        .new_instance(N0, "C", 0, vec![Value::Int(100)])
        .unwrap();
    assert_eq!(bump(&cluster, N0, &fresh, 1).unwrap(), Value::Int(101));
    let err = bump(&cluster, N0, &c, 1).unwrap_err();
    assert!(err.to_string().contains("unknown object"), "{err}");
}

#[test]
fn restarted_owner_with_amnesia_fails_over_to_its_replica() {
    let (cluster, c) = deployed(3, 1, N0, 15);
    assert_eq!(bump(&cluster, N0, &c, 2).unwrap(), Value::Int(7));
    cluster.crash(N1);
    cluster.restart(N1);
    // The owner is live again but lost the export; the replica still holds
    // the acknowledged state and takes over.
    assert_eq!(bump(&cluster, N0, &c, 1).unwrap(), Value::Int(8));
    let stats = cluster.stats();
    assert_eq!(stats.failovers, 1, "{stats}");
    assert_eq!(stats.promotions, 1, "{stats}");
    assert_eq!(
        stats.net_failures, 0,
        "amnesia is a fault reply, not a network failure: {stats}"
    );
}

#[test]
fn two_sequential_crashes_survive_with_replication_factor_two() {
    // Owner on node 1, k = 2 → backups on nodes 0 and 2, client on node 3.
    let (cluster, c) = deployed(4, 2, N3, 16);
    assert_eq!(bump(&cluster, N3, &c, 2).unwrap(), Value::Int(7));

    cluster.crash(N1);
    assert_eq!(bump(&cluster, N3, &c, 3).unwrap(), Value::Int(10));
    assert_eq!(cluster.location_of(N3, &c), Some(N0));

    // The promoted home re-established the replication factor, so a second
    // crash — with node 1 still down — loses nothing either.
    cluster.crash(N0);
    assert_eq!(bump(&cluster, N3, &c, 4).unwrap(), Value::Int(14));
    assert_eq!(cluster.location_of(N3, &c), Some(N2));

    let stats = cluster.stats();
    assert_eq!(stats.failovers, 2, "{stats}");
    assert_eq!(stats.promotions, 2, "{stats}");
}

#[test]
fn second_caller_rehomes_through_the_recorded_promotion() {
    // A replicated static singleton used from two client nodes: after the
    // crash, the first caller promotes; the second must follow the recorded
    // promotion instead of promoting a stale backup copy twice.
    let mut app = Application::new();
    let u = app.universe_mut();
    let s = u.declare("S", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, s);
    let v = cb.static_field(Field::new("v", Ty::Int));
    // static int bump(int d) { v = v + d; return v; }
    let mut mb = MethodBuilder::new(1);
    mb.get_static(s, v);
    mb.load_local(0);
    mb.add();
    mb.put_static(s, v);
    mb.get_static(s, v);
    mb.ret_value();
    cb.static_method(u, "bump", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(u);
    let policy = StaticPolicy::new().default_statics(N1).replicate("S", 1);
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 17, Box::new(policy));

    let call = |from: NodeId, d: i32| cluster.call_static(from, "S", "bump", vec![Value::Int(d)]);
    assert_eq!(call(N0, 2).unwrap(), Value::Int(2));
    assert_eq!(call(N2, 3).unwrap(), Value::Int(5));

    cluster.crash(N1);
    // First caller's failover promotes the backup (node 0)…
    assert_eq!(call(N0, 1).unwrap(), Value::Int(6));
    // …the second caller re-homes to the already-promoted copy: the total
    // keeps accumulating in ONE place, and no second promotion happens.
    assert_eq!(call(N2, 4).unwrap(), Value::Int(10));
    assert_eq!(call(N0, 0).unwrap(), Value::Int(10));

    let stats = cluster.stats();
    assert_eq!(stats.promotions, 1, "exactly one promotion: {stats}");
    assert_eq!(stats.failovers, 2, "both callers re-homed: {stats}");
}

#[test]
fn failover_invalidates_cached_property_reads() {
    // Property caching (PR 3) composed with failover: a getter value cached
    // against the dead owner's location must never be served once the
    // object re-homed — promotion tombstones the old location.
    let policy = StaticPolicy::new()
        .place("C", Placement::Node(N1))
        .default_statics(N0)
        .cache("C", true)
        .replicate("C", 1);
    let cluster = counter_app()
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 18, Box::new(policy));
    let c = cluster
        .new_instance(N0, "C", 0, vec![Value::Int(5)])
        .unwrap();
    cluster.pin(N0, &c);
    let get = || cluster.call_method(N0, c.clone(), "get_v", vec![]).unwrap();
    assert_eq!(get(), Value::Int(5));
    assert_eq!(get(), Value::Int(5));
    assert!(cluster.stats().cache_hits >= 1);

    cluster.crash(N1);
    // A mutating call fails over; the promoted copy then serves bump(3).
    assert_eq!(bump(&cluster, N0, &c, 3).unwrap(), Value::Int(8));
    // The read must see 8 — the cached 5 is tagged with the tombstoned old
    // location and can never surface again.
    assert_eq!(get(), Value::Int(8));
    assert_eq!(get(), Value::Int(8));
}

#[test]
fn unchanged_state_is_not_reshipped_to_replicas() {
    // Read-heavy workload on a replicated static singleton: every client's
    // first static call serves a `Discover` on the owner, and the owner
    // used to re-ship the (unchanged) singleton state to every backup on
    // each of those serves. The version never moved, so the shipments were
    // pure waste; now they are skipped.
    let mut app = Application::new();
    let u = app.universe_mut();
    let s = u.declare("S", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, s);
    let v = cb.static_field(Field::new("v", Ty::Int));
    // static int bump(int d) { v = v + d; return v; }
    let mut mb = MethodBuilder::new(1);
    mb.get_static(s, v);
    mb.load_local(0);
    mb.add();
    mb.put_static(s, v);
    mb.get_static(s, v);
    mb.ret_value();
    cb.static_method(u, "bump", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(u);
    let policy = StaticPolicy::new().default_statics(N1).replicate("S", 2);
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(5, 21, Box::new(policy));

    // Four clients, five reads each, through the generated static getter.
    let read = |from: NodeId| cluster.call_static(from, "S", "get_v", vec![]).unwrap();
    for &n in &[N0, N2, N3, NodeId(4)] {
        for _ in 0..5 {
            assert_eq!(read(n), Value::Int(0));
        }
    }
    let read_only = cluster.stats().replica_syncs;
    assert_eq!(
        read_only,
        2,
        "an unmutated singleton ships once per backup, not once per \
         discover: {}",
        cluster.stats()
    );

    // A mutation moves the version, so the next sync ships again.
    let bump = |from: NodeId, d: i32| {
        cluster
            .call_static(from, "S", "bump", vec![Value::Int(d)])
            .unwrap()
    };
    assert_eq!(bump(N0, 7), Value::Int(7));
    let after_write = cluster.stats().replica_syncs;
    assert!(
        after_write > read_only,
        "a served mutation must still re-ship: {}",
        cluster.stats()
    );

    // And the crash/promote battery is intact: the backup that was seeded
    // exactly once (plus the post-write sync) holds every acknowledged
    // mutation.
    cluster.crash(N1);
    assert_eq!(bump(N2, 1), Value::Int(8));
    assert_eq!(read(N0), Value::Int(8));
    let stats = cluster.stats();
    assert_eq!(stats.promotions, 1, "{stats}");
}

#[test]
fn same_seed_failover_runs_are_identical() {
    let run = || -> (Vec<Value>, RuntimeStats, u64) {
        let (cluster, c) = deployed(3, 1, N0, 19);
        let mut out = Vec::new();
        out.push(bump(&cluster, N0, &c, 2).unwrap());
        out.push(bump(&cluster, N0, &c, 3).unwrap());
        cluster.crash(N1);
        out.push(bump(&cluster, N0, &c, 1).unwrap());
        cluster.restart(N1);
        out.push(bump(&cluster, N0, &c, 4).unwrap());
        (out, cluster.stats(), cluster.network().now().as_ns())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "values");
    assert_eq!(a.1, b.1, "stats (incl. failover counters)");
    assert_eq!(a.2, b.2, "simulated clock");
}

#[test]
fn restarted_statics_owner_follows_the_promotion_not_its_amnesia() {
    // The stale-promotion bug: `shared.homes` records a promotion when a
    // backup takes over, but nothing reconciled that record when the
    // pre-crash owner restarted. A fresh caller (or the restarted owner
    // itself) resolving the singleton through placement policy would reach
    // the amnesiac node, which minted a brand-new default-state singleton —
    // silently forking the object. The promoted copy is authoritative:
    // every resolution path must follow the promotion chain to it.
    let mut app = Application::new();
    let u = app.universe_mut();
    let s = u.declare("S", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, s);
    let v = cb.static_field(Field::new("v", Ty::Int));
    // static int bump(int d) { v = v + d; return v; }
    let mut mb = MethodBuilder::new(1);
    mb.get_static(s, v);
    mb.load_local(0);
    mb.add();
    mb.put_static(s, v);
    mb.get_static(s, v);
    mb.ret_value();
    cb.static_method(u, "bump", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(u);
    let policy = StaticPolicy::new().default_statics(N1).replicate("S", 1);
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 23, Box::new(policy));

    let call = |from: NodeId, d: i32| cluster.call_static(from, "S", "bump", vec![Value::Int(d)]);
    // Establish the singleton on its policy home and ship a backup.
    assert_eq!(call(N0, 2).unwrap(), Value::Int(2));

    // Crash → the next call promotes the backup (node 0 holds the state).
    cluster.crash(N1);
    assert_eq!(call(N0, 3).unwrap(), Value::Int(5));

    // The pre-crash owner comes back with a wiped registry.
    cluster.restart(N1);

    // A caller that never touched S resolves through the promotion record,
    // not through the restarted policy owner's empty registry.
    assert_eq!(
        call(N2, 4).unwrap(),
        Value::Int(9),
        "a fresh caller must see the promoted total, not a fork at 4"
    );
    // The restarted owner itself must follow its own promoted-away copy.
    assert_eq!(
        call(N1, 1).unwrap(),
        Value::Int(10),
        "the amnesiac owner must not resurrect a default singleton"
    );
    // One object, one total, everywhere.
    assert_eq!(call(N0, 0).unwrap(), Value::Int(10));

    let stats = cluster.stats();
    assert_eq!(stats.promotions, 1, "exactly one promotion: {stats}");
}
