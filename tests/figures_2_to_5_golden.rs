//! Experiment **E2**: golden test of the transformation output against the
//! paper's Figures 3, 4 and 5.
//!
//! The paper shows, for the sample class `X` of Figure 2, the generated
//! `X_O_Int` / `X_O_Local` / `X_O_Proxy_*` family (Figure 3), the
//! `X_C_Int` / `X_C_Local` / `X_C_Proxy_*` family (Figure 4) and the two
//! factories (Figure 5). These tests pin the generated *declaration
//! surface* and the load-bearing body shapes to the listings.

use rafda::classmodel::{pretty, sample};
use rafda::{Application, Transformer};

fn transformed() -> (rafda::ClassUniverse, rafda::transform::TransformPlan) {
    let mut app = Application::new();
    sample::build_figure2(app.universe_mut());
    let t = app
        .transform_with(Transformer::new().protocols(&["SOAP", "RMI"]))
        .unwrap();
    (t.universe().clone(), t.plan().clone())
}

#[test]
fn figure3_x_o_int_interface() {
    let (u, _) = transformed();
    let id = u.by_name("X_O_Int").unwrap();
    let decl = pretty::declaration(&u, id);
    // public interface X_O_Int {
    //     Y_O_Int get_y();
    //     void set_y(Y_O_Int y);
    //     int m(long j);
    // }
    assert!(decl.contains("public interface X_O_Int"), "{decl}");
    assert!(decl.contains("Y_O_Int get_y()"), "{decl}");
    assert!(decl.contains("void set_y(Y_O_Int a0)"), "{decl}");
    assert!(decl.contains("int m(long a0)"), "{decl}");
    // Exactly the three members of Figure 3 — nothing else leaked in.
    assert_eq!(u.class(id).methods.len(), 3);
}

#[test]
fn figure3_x_o_local_implementation() {
    let (u, _) = transformed();
    let id = u.by_name("X_O_Local").unwrap();
    let decl = pretty::declaration(&u, id);
    assert!(
        decl.contains("public class X_O_Local implements X_O_Int"),
        "{decl}"
    );
    // private Y_O_Int y; public X_O_Local() {}
    assert!(decl.contains("private Y_O_Int y;"), "{decl}");
    assert!(decl.contains("X_O_Local()"), "{decl}");
    // "get_y() and n(j) below are interface calls": X_O_Local.m must not
    // touch any field directly.
    let c = u.class(id);
    let m = &c.methods[c.method_index("m").unwrap() as usize];
    let body = m.body.as_ref().unwrap();
    assert!(
        !body
            .code
            .iter()
            .any(|i| matches!(i, rafda::classmodel::Insn::GetField(_))),
        "m must use interface calls only: {}",
        pretty::disassemble(&u, id)
    );
    let dis = pretty::disassemble(&u, id);
    assert!(dis.contains("invoke get_y/0"), "{dis}");
    assert!(dis.contains("invoke n/1"), "{dis}");
}

#[test]
fn figure3_proxies_for_each_protocol() {
    let (u, _) = transformed();
    for proto in ["SOAP", "RMI"] {
        let id = u.by_name(&format!("X_O_Proxy_{proto}")).unwrap();
        let decl = pretty::declaration(&u, id);
        assert!(
            decl.contains(&format!(
                "public class X_O_Proxy_{proto} implements X_O_Int"
            )),
            "{decl}"
        );
        // All interface methods present and native ("these methods perform
        // SOAP calls on the real remote object").
        for m in &u.class(id).methods {
            if !m.is_ctor() {
                assert!(m.is_native, "{}.{} must be native", decl, m.name);
            }
        }
        assert!(u.class(id).method_index("get_y").is_some());
        assert!(u.class(id).method_index("set_y").is_some());
        assert!(u.class(id).method_index("m").is_some());
    }
}

#[test]
fn figure4_x_c_int_and_local() {
    let (u, _) = transformed();
    let ci = u.by_name("X_C_Int").unwrap();
    let decl = pretty::declaration(&u, ci);
    // public interface X_C_Int { Z_O_Int get_z(); int p(int i); }
    assert!(decl.contains("public interface X_C_Int"), "{decl}");
    assert!(decl.contains("Z_O_Int get_z()"), "{decl}");
    assert!(decl.contains("int p(int a0)"), "{decl}");

    let cl = u.by_name("X_C_Local").unwrap();
    let decl = pretty::declaration(&u, cl);
    assert!(
        decl.contains("public class X_C_Local implements X_C_Int"),
        "{decl}"
    );
    assert!(decl.contains("private Z_O_Int z;"), "{decl}");
    // p was made non-static ("static members are made non-static").
    let c = u.class(cl);
    let p = &c.methods[c.method_index("p").unwrap() as usize];
    assert!(!p.is_static);
    // Figure 4: public int p(int i) { return get_z().q(i); } — own-static
    // access short-circuits through `this`, no discover() call.
    let dis = pretty::disassemble(&u, cl);
    assert!(dis.contains("invoke get_z/0"), "{dis}");
    assert!(dis.contains("invoke q/1"), "{dis}");
    assert!(!dis.contains("discover"), "{dis}");
}

#[test]
fn figure4_class_proxies() {
    let (u, _) = transformed();
    for proto in ["SOAP", "RMI"] {
        let id = u.by_name(&format!("X_C_Proxy_{proto}")).unwrap();
        let c = u.class(id);
        assert!(c.method_index("get_z").is_some());
        assert!(c.method_index("p").is_some());
        for m in &c.methods {
            if !m.is_ctor() {
                assert!(m.is_native);
            }
        }
    }
}

#[test]
fn figure5_x_o_factory() {
    let (u, plan) = transformed();
    let id = u.by_name("X_O_Factory").unwrap();
    let c = u.class(id);
    // public static X_O_Int make()  — implementation-aware, hence native.
    let make = &c.methods[c.method_index("make").unwrap() as usize];
    assert!(make.is_static && make.is_native);
    let x = u.by_name("X").unwrap();
    let fx = plan.family(x).unwrap();
    assert_eq!(make.ret, rafda::Ty::Object(fx.obj_int));
    // public static void init(X_O_Int that, Y_O_Int y) { that.set_y(y); }
    let init = &c.methods[c.method_index("init$0").unwrap() as usize];
    assert!(init.is_static && !init.is_native);
    assert_eq!(init.params.len(), 2);
    let dis = pretty::disassemble(&u, id);
    assert!(dis.contains("invoke set_y/1"), "{dis}");
}

#[test]
fn figure5_x_c_factory_clinit() {
    let (u, _) = transformed();
    let id = u.by_name("X_C_Factory").unwrap();
    let c = u.class(id);
    let discover = &c.methods[c.method_index("discover").unwrap() as usize];
    assert!(discover.is_static && discover.is_native);
    // public static void clinit(X_C_Int that) {
    //     Z_O_Int t = Z_O_Factory.make();
    //     Z_O_Factory.init(t, Y_C_Factory.discover().get_K());
    //     that.set_z(t);
    // }
    let dis = pretty::disassemble(&u, id);
    assert!(dis.contains("invoke_static Z_O_Factory::make/0"), "{dis}");
    assert!(dis.contains("invoke_static Z_O_Factory::init$0/2"), "{dis}");
    assert!(
        dis.contains("invoke_static Y_C_Factory::discover/0"),
        "{dis}"
    );
    assert!(dis.contains("invoke get_K/0"), "{dis}");
    assert!(dis.contains("invoke set_z/1"), "{dis}");
}

#[test]
fn full_family_inventory_for_all_three_classes() {
    let (u, _) = transformed();
    // X and Y have static members -> full 10-class family each (O-int,
    // O-local, 2 O-proxies, O-factory, C-int, C-local, 2 C-proxies,
    // C-factory); Z has no statics -> 5.
    for name in [
        "X_O_Int",
        "X_O_Local",
        "X_O_Proxy_SOAP",
        "X_O_Proxy_RMI",
        "X_O_Factory",
        "X_C_Int",
        "X_C_Local",
        "X_C_Proxy_SOAP",
        "X_C_Proxy_RMI",
        "X_C_Factory",
        "Y_O_Int",
        "Y_O_Local",
        "Y_C_Int",
        "Y_C_Local",
        "Y_C_Factory",
        "Z_O_Int",
        "Z_O_Local",
        "Z_O_Proxy_SOAP",
        "Z_O_Proxy_RMI",
        "Z_O_Factory",
    ] {
        assert!(u.by_name(name).is_some(), "missing {name}");
    }
    for name in ["Z_C_Int", "Z_C_Local", "Z_C_Factory"] {
        assert!(u.by_name(name).is_none(), "unexpected {name}");
    }
}

#[test]
fn full_generated_surface_matches_golden_file() {
    // The complete declaration surface of every generated artefact is
    // pinned to `tests/golden/figure2_generated.txt`. If a deliberate
    // change to the generators alters the output, regenerate the file by
    // copying the `actual` dump this assertion prints.
    let mut app = Application::new();
    sample::build_figure2(app.universe_mut());
    let t = app
        .transform_with(Transformer::new().protocols(&["SOAP", "RMI"]))
        .unwrap();
    let actual = t.dump_generated();
    let golden = include_str!("golden/figure2_generated.txt");
    assert_eq!(
        actual.trim(),
        golden.trim(),
        "generated surface drifted from the golden file;\nactual:\n{actual}"
    );
}
