//! Experiment **E1**: the paper's Figure 1 re-distribution scenario at the
//! public-API level.
//!
//! "Objects of class A and class B hold references to a shared instance of
//! class C. The application is transformed so that the instance of C is
//! remote to its reference holders. The local instance of C is replaced
//! with a proxy, Cp, to the remote implementation, C'."

use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::{Application, LocalPolicy, NodeId, Ty, Value};

fn figure1_app() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let c = u.declare("C", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(u, c);
        let v = cb.field(Field::new("v", Ty::Int));
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(c, v).ret();
        cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
        // int get() { return v; }   int add(int d) { v = v + d; return v; }
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(c, v).ret_value();
        cb.method(u, "get", vec![], Ty::Int, Some(mb.finish()));
        let mut mb = MethodBuilder::new(2);
        mb.load_this();
        mb.load_this().get_field(c, v);
        mb.load_local(1).add();
        mb.put_field(c, v);
        mb.load_this().get_field(c, v).ret_value();
        cb.method(u, "add", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    }
    for name in ["A", "B"] {
        let id = u.declare(name, ClassKind::Class);
        let mut cb = ClassBuilder::new(u, id);
        let f = cb.field(Field::new("shared", Ty::Object(c)));
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(id, f).ret();
        cb.ctor(u, vec![Ty::Object(c)], Some(mb.finish()));
        // int work(int d) { return shared.add(d); }
        let add_sig = u.sig("add", vec![Ty::Int]);
        let mut mb = MethodBuilder::new(2);
        mb.load_this().get_field(id, f);
        mb.load_local(1);
        mb.invoke(add_sig, 1);
        mb.ret_value();
        cb.method(u, "work", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    }
    app
}

#[test]
fn shared_instance_becomes_remote_and_back() {
    let app = figure1_app();
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(2, 42, Box::new(LocalPolicy::default()));

    let n0 = NodeId(0);
    let n1 = NodeId(1);

    // Non-distributed phase: A and B share C on node 0.
    let c = cluster
        .new_instance(n0, "C", 0, vec![Value::Int(100)])
        .unwrap();
    let a = cluster.new_instance(n0, "A", 0, vec![c.clone()]).unwrap();
    let b = cluster.new_instance(n0, "B", 0, vec![c.clone()]).unwrap();
    assert_eq!(
        cluster
            .call_method(n0, a.clone(), "work", vec![Value::Int(1)])
            .unwrap(),
        Value::Int(101)
    );
    assert_eq!(
        cluster
            .call_method(n0, b.clone(), "work", vec![Value::Int(2)])
            .unwrap(),
        Value::Int(103)
    );
    assert_eq!(cluster.network().stats().messages, 0);
    let t_local_phase = cluster.network().now();

    // Re-distribution: C -> C' on node 1, Cp left in place.
    let handle = c.as_ref_handle().unwrap();
    let event = cluster.migrate(n0, handle, n1).unwrap();
    assert_eq!((event.from, event.to), (n0, n1));
    assert_eq!(cluster.location_of(n0, &c), Some(n1));

    // Shared state survived; A and B are untouched but now call remotely.
    assert_eq!(
        cluster
            .call_method(n0, a.clone(), "work", vec![Value::Int(3)])
            .unwrap(),
        Value::Int(106)
    );
    assert_eq!(
        cluster
            .call_method(n0, b.clone(), "work", vec![Value::Int(4)])
            .unwrap(),
        Value::Int(110)
    );
    let remote_msgs = cluster.network().stats().messages;
    assert!(remote_msgs >= 4, "two remote calls = four messages");
    let t_remote_phase = cluster.network().now();
    assert!(
        t_remote_phase > t_local_phase,
        "remote calls must cost simulated time"
    );

    // Both holders see the same instance: direct read agrees.
    assert_eq!(
        cluster.call_method(n0, c.clone(), "get", vec![]).unwrap(),
        Value::Int(110)
    );

    // Adapt back: pull C local again; the network goes quiet.
    cluster.pull_local(n0, handle).unwrap();
    assert_eq!(cluster.location_of(n0, &c), Some(n0));
    let msgs_before = cluster.network().stats().messages;
    assert_eq!(
        cluster
            .call_method(n0, a, "work", vec![Value::Int(5)])
            .unwrap(),
        Value::Int(115)
    );
    assert_eq!(
        cluster
            .call_method(n0, b, "work", vec![Value::Int(5)])
            .unwrap(),
        Value::Int(120)
    );
    assert_eq!(cluster.network().stats().messages, msgs_before);
}

#[test]
fn remote_call_latency_is_lan_scale() {
    // The simulated LAN should put a single remote call in the
    // sub-millisecond range (2003-era 100 Mbit/s switched LAN + RMI stack).
    let app = figure1_app();
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(2, 42, Box::new(LocalPolicy::default()));
    let c = cluster
        .new_instance(NodeId(0), "C", 0, vec![Value::Int(0)])
        .unwrap();
    let h = c.as_ref_handle().unwrap();
    cluster.migrate(NodeId(0), h, NodeId(1)).unwrap();
    let t0 = cluster.network().now();
    cluster
        .call_method(NodeId(0), c, "add", vec![Value::Int(1)])
        .unwrap();
    let rtt = cluster.network().now() - t0;
    assert!(rtt.as_ns() > 100_000, "rtt = {rtt}");
    assert!(rtt.as_ns() < 3_000_000, "rtt = {rtt}");
}

#[test]
fn migrating_a_proxy_is_rejected_with_guidance() {
    let app = figure1_app();
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(2, 42, Box::new(LocalPolicy::default()));
    let c = cluster
        .new_instance(NodeId(0), "C", 0, vec![Value::Int(0)])
        .unwrap();
    let h = c.as_ref_handle().unwrap();
    cluster.migrate(NodeId(0), h, NodeId(1)).unwrap();
    // `h` is now the proxy; migrating it again from node 0 must fail.
    let err = cluster.migrate(NodeId(0), h, NodeId(1)).unwrap_err();
    assert!(err.to_string().contains("proxy"), "{err}");
}
