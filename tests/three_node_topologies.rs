//! Multi-node reference topology tests: proxies must never chain — a
//! reference forwarded between nodes always points at the object's true
//! home (RMI-style stub semantics), and calls route directly.

use rafda::classmodel::sample;
use rafda::{Application, NodeId, Placement, StaticPolicy, Value};

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);

fn cluster_with_y_on_n1_x_on_n2() -> rafda::Cluster {
    let mut app = Application::new();
    sample::build_figure2(app.universe_mut());
    let policy = StaticPolicy::new()
        .place("Y", Placement::Node(N1))
        .place("X", Placement::Node(N2))
        .default_statics(N0);
    app.transform(&["RMI"])
        .unwrap()
        .deploy(3, 5, Box::new(policy))
}

#[test]
fn forwarded_references_point_at_the_true_home() {
    let cluster = cluster_with_y_on_n1_x_on_n2();
    // Node 0 creates Y (lands on node 1) and passes its proxy into X's
    // constructor (X lands on node 2). Node 2 must hold a proxy directly to
    // node 1 — not to node 0's proxy.
    let y = cluster
        .new_instance(N0, "Y", 0, vec![Value::Int(3)])
        .unwrap();
    assert_eq!(cluster.location_of(N0, &y), Some(N1));
    let x = cluster.new_instance(N0, "X", 0, vec![y.clone()]).unwrap();
    assert_eq!(cluster.location_of(N0, &x), Some(N2));

    let net = cluster.network();
    net.reset_stats();
    // x.m(4) from node 0: one hop 0->2 for m, one hop 2->1 for y.n — and
    // critically NO 2->0 traffic (no chaining through node 0's proxy).
    let r = cluster
        .call_method(N0, x, "m", vec![Value::Long(4)])
        .unwrap();
    assert_eq!(r, Value::Int(7));
    let stats = net.stats();
    assert!(stats.link(N0, N2).messages >= 1, "driver -> X home");
    assert!(stats.link(N2, N1).messages >= 1, "X home -> Y home, direct");
    assert_eq!(
        stats.link(N2, N0).messages + stats.link(N0, N1).messages,
        1, // only the reply 2->0; nothing routed through node 0 to Y
        "no proxy chaining through the creator: {stats:?}"
    );
}

#[test]
fn self_reference_passed_around_unwraps_at_home() {
    // A Y reference that travels 0 -> 2 -> (as part of X's state) and is
    // then fetched by node 1 (Y's own home) must unwrap to the local
    // object, not to a proxy-to-self.
    let cluster = cluster_with_y_on_n1_x_on_n2();
    let y = cluster
        .new_instance(N0, "Y", 0, vec![Value::Int(3)])
        .unwrap();
    let x = cluster.new_instance(N0, "X", 0, vec![y]).unwrap();
    // Read X.y from node 1 via the property accessor: the returned
    // reference should be node 1's *local* Y.
    let xh_on_n1 = {
        // Materialise a proxy for X on node 1 by passing it through a call:
        // simplest is to ask node 1 to invoke get_y on x's proxy.
        let y_back = cluster.call_method(N0, x, "get_y", vec![]).unwrap();
        // On node 0 this is a proxy to node 1.
        assert_eq!(cluster.location_of(N0, &y_back), Some(N1));
        y_back
    };
    let _ = xh_on_n1;
}

#[test]
fn migration_between_secondary_nodes_keeps_third_party_references_valid() {
    let cluster = cluster_with_y_on_n1_x_on_n2();
    let y = cluster
        .new_instance(N0, "Y", 0, vec![Value::Int(3)])
        .unwrap();
    let x = cluster.new_instance(N0, "X", 0, vec![y]).unwrap();
    assert_eq!(
        cluster
            .call_method(N0, x.clone(), "m", vec![Value::Long(4)])
            .unwrap(),
        Value::Int(7)
    );
    // Move Y from node 1 to node 0 (a node that only held a proxy). X on
    // node 2 still reaches it through the forwarding proxy left on node 1.
    let y_home_handle = {
        // Find Y's handle on node 1: it is the only export there.
        let vm1 = cluster.vm(N1);
        let mut found = None;
        vm1.with_heap(|heap| {
            for h in heap.handles() {
                if let Some(class) = heap.class_of(h) {
                    if cluster.universe().class(class).name == "Y_O_Local" {
                        found = Some(h);
                    }
                }
            }
        });
        found.expect("Y lives on node 1")
    };
    cluster.migrate(N1, y_home_handle, N0).unwrap();
    // Still correct through the (now forwarded) path.
    assert_eq!(
        cluster
            .call_method(N0, x, "m", vec![Value::Long(10)])
            .unwrap(),
        Value::Int(13)
    );
    assert_eq!(cluster.stats().migrations, 1);
}
