//! End-to-end equivalence for programs using inheritance and overriding —
//! the interaction the paper's hybrid-wrapper investigation stumbled on
//! ("problems with dynamic inheritance") and the transformation approach
//! handles: `B_O_Int extends A_O_Int`, `B_O_Local extends A_O_Local`, and
//! proxies chain along the hierarchy.

use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::{Application, NodeId, Placement, StaticPolicy, Trace, Ty, Value};

/// Shape hierarchy: `Shape { int scale; int area() = 0; int scaled() =
/// scale * area() }`, `Square extends Shape { int side; area() = side² }`,
/// `Rect extends Square { int h; area() = side * h }` — overriding two
/// levels deep, with a superclass method (`scaled`) calling the override
/// virtually.
fn build() -> Application {
    let mut app = Application::new();
    let obs = app.observer();
    let u = app.universe_mut();

    let shape = u.declare("Shape", ClassKind::Class);
    let square = u.declare("Square", ClassKind::Class);
    let rect = u.declare("Rect", ClassKind::Class);
    let area_sig = u.sig("area", vec![]);
    {
        let mut cb = ClassBuilder::new(u, shape);
        let scale = cb.field(Field::new("scale", Ty::Int));
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(shape, scale).ret();
        cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
        let mut mb = MethodBuilder::new(1);
        mb.const_int(0).ret_value();
        cb.method(u, "area", vec![], Ty::Int, Some(mb.finish()));
        // int scaled() { return scale * this.area(); }  — virtual dispatch
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(shape, scale);
        mb.load_this();
        mb.invoke(area_sig, 0);
        mb.mul().ret_value();
        cb.method(u, "scaled", vec![], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    }
    {
        let mut cb = ClassBuilder::new(u, square);
        cb.superclass(shape);
        let side = cb.field(Field::new("side", Ty::Int));
        // Square(int scale, int side): no ctor chaining in the model, so
        // set both fields directly.
        let mut mb = MethodBuilder::new(3);
        mb.load_this().load_local(1).put_field(shape, 0).ret();
        let b = {
            let mut mb2 = MethodBuilder::new(3);
            mb2.load_this().load_local(1).put_field(shape, 0);
            mb2.load_this().load_local(2).put_field(square, side);
            mb2.ret();
            mb2.finish()
        };
        drop(mb);
        cb.ctor(u, vec![Ty::Int, Ty::Int], Some(b));
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(square, side);
        mb.load_this().get_field(square, side);
        mb.mul().ret_value();
        cb.method(u, "area", vec![], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    }
    {
        let mut cb = ClassBuilder::new(u, rect);
        cb.superclass(square);
        let h = cb.field(Field::new("h", Ty::Int));
        let mut mb = MethodBuilder::new(4);
        mb.load_this().load_local(1).put_field(shape, 0);
        mb.load_this().load_local(2).put_field(square, 0);
        mb.load_this().load_local(3).put_field(rect, h);
        mb.ret();
        cb.ctor(u, vec![Ty::Int, Ty::Int, Ty::Int], Some(mb.finish()));
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(square, 0);
        mb.load_this().get_field(rect, h);
        mb.mul().ret_value();
        cb.method(u, "area", vec![], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    }
    // Driver: emit scaled() for one of each, dispatched through the base
    // class method.
    {
        let mut cb = ClassBuilder::declare(u, "Driver", ClassKind::Class);
        let scaled_sig = u.sig("scaled", vec![]);
        let mut mb = MethodBuilder::new(1);
        let emit = |mb: &mut MethodBuilder| {
            mb.unop(rafda::classmodel::UnOp::Convert("long"));
            mb.invoke_static(obs.class, obs.emit, 1);
            mb.pop();
        };
        mb.load_local(0).new_init(shape, 0, 1);
        mb.invoke(scaled_sig, 0);
        emit(&mut mb);
        mb.load_local(0).const_int(3).new_init(square, 0, 2);
        mb.invoke(scaled_sig, 0);
        emit(&mut mb);
        mb.load_local(0)
            .const_int(3)
            .const_int(4)
            .new_init(rect, 0, 3);
        mb.invoke(scaled_sig, 0);
        emit(&mut mb);
        mb.const_int(0).ret_value();
        cb.static_method(u, "main", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    }
    app
}

fn original() -> Trace {
    build().run_original("Driver", "main", vec![Value::Int(2)])
}

#[test]
fn original_behaviour_sanity() {
    let t = original();
    // scale=2: Shape.scaled = 2*0 = 0; Square(side 3) = 2*9 = 18;
    // Rect(3x4) = 2*12 = 24.
    assert_eq!(
        t.events(),
        &[
            rafda::TraceEvent::Emit(0),
            rafda::TraceEvent::Emit(18),
            rafda::TraceEvent::Emit(24)
        ]
    );
}

#[test]
fn transformed_local_preserves_override_dispatch() {
    let rt = build().transform(&["RMI"]).unwrap().deploy_local();
    let t = rt.run_observed("Driver", "main", vec![Value::Int(2)]);
    assert_eq!(original(), t);
}

#[test]
fn distributed_hierarchy_dispatches_remotely() {
    // Each level of the hierarchy lives on a different node; the virtual
    // call inside Shape.scaled() must still reach the most-derived area().
    let policy = StaticPolicy::new()
        .place("Shape", Placement::Node(NodeId(0)))
        .place("Square", Placement::Node(NodeId(1)))
        .place("Rect", Placement::Node(NodeId(2)))
        .default_statics(NodeId(1));
    let cluster = build()
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 4, Box::new(policy));
    let t = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(2)]);
    assert_eq!(original(), t);
    assert!(cluster.network().stats().messages > 0);
}

#[test]
fn subclass_proxies_inherit_base_hooks() {
    // Calling an inherited (non-overridden) method through a subclass
    // proxy resolves via the chained proxy hierarchy.
    let policy = StaticPolicy::new().place("Rect", Placement::Node(NodeId(1)));
    let cluster = build()
        .transform(&["RMI"])
        .unwrap()
        .deploy(2, 4, Box::new(policy));
    let r = cluster
        .new_instance(
            NodeId(0),
            "Rect",
            0,
            vec![Value::Int(2), Value::Int(3), Value::Int(4)],
        )
        .unwrap();
    assert_eq!(cluster.location_of(NodeId(0), &r), Some(NodeId(1)));
    // `scaled` is declared on Shape only; through the Rect proxy it must
    // forward and dispatch to Rect.area remotely.
    assert_eq!(
        cluster
            .call_method(NodeId(0), r.clone(), "scaled", vec![])
            .unwrap(),
        Value::Int(24)
    );
    // get_scale is a Shape accessor, also inherited by the proxy chain.
    assert_eq!(
        cluster
            .call_method(NodeId(0), r, "get_scale", vec![])
            .unwrap(),
        Value::Int(2)
    );
}
