//! The "modulo network failure" clause (paper Sections 1 & 4): distributing
//! an application can introduce network failures; equivalence is required
//! only up to those failures. These tests inject drops, partitions and
//! crashes and check (a) failures surface as network failures — never as
//! silent wrong answers — and (b) traces stay equivalent modulo the
//! failure.

use rafda::corpus::{generate_app, AppSpec, ObserverHooks};
use rafda::{
    Application, Cluster, NodeId, Placement, StaticPolicy, Trace, TraceEvent, Value,
};

fn spec() -> AppSpec {
    AppSpec {
        inheritance: false,
        arrays: false,
        classes: 6,
        int_fields: 2,
        statics: true,
        seed: 77,
    }
}

fn build_cluster() -> Cluster {
    let mut app = Application::new();
    let obs = app.observer();
    generate_app(
        app.universe_mut(),
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
        &spec(),
    );
    let mut policy = StaticPolicy::new().default_statics(NodeId(1));
    for i in 0..6 {
        policy = policy.place(&format!("C{i}"), Placement::Node(NodeId((i % 2) as u32)));
    }
    app.transform(&["RMI"])
        .unwrap()
        .deploy(2, 7, Box::new(policy))
}

fn clean_trace() -> Trace {
    let cluster = build_cluster();
    cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)])
}

#[test]
fn partition_mid_workload_yields_prefix_then_network_failure() {
    let clean = clean_trace();
    assert!(clean.len() > 2);

    let cluster = build_cluster();
    // Run once cleanly to warm placement, then partition and run again.
    cluster.network().fault_plan(|f| f.partition(NodeId(0), NodeId(1)));
    let failed = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)]);
    // The failed run must end in a network failure…
    assert!(
        matches!(failed.events().last(), Some(TraceEvent::NetworkFailure(_))),
        "{failed}"
    );
    // …and be equivalent to the clean run modulo that failure.
    assert!(
        clean.equivalent_modulo_network(&failed),
        "clean:\n{clean}\nfailed:\n{failed}"
    );
    assert!(
        failed.equivalent_modulo_network(&clean),
        "symmetry"
    );
}

#[test]
fn crash_surfaces_as_network_failure() {
    let cluster = build_cluster();
    cluster.network().fault_plan(|f| f.crash(NodeId(1)));
    let failed = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)]);
    assert!(matches!(
        failed.events().last(),
        Some(TraceEvent::NetworkFailure(m)) if m.contains("crashed")
    ));
    // Recovery restores full service.
    cluster.network().fault_plan(|f| f.recover(NodeId(1)));
    let after = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)]);
    // Statics retain their mutated values across runs, so compare only the
    // failure-freeness, not the exact values.
    assert!(
        !after
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::NetworkFailure(_))),
        "{after}"
    );
}

#[test]
fn message_drops_never_corrupt_results() {
    // Under heavy loss, every run either matches the clean prefix or ends
    // with a network failure — never a divergent value.
    let clean = clean_trace();
    for seed in 0..12u64 {
        let mut app = Application::new();
        let obs = app.observer();
        generate_app(
            app.universe_mut(),
            ObserverHooks {
                class: obs.class,
                emit: obs.emit,
            },
            &spec(),
        );
        let mut policy = StaticPolicy::new().default_statics(NodeId(1));
        for i in 0..6 {
            policy = policy.place(&format!("C{i}"), Placement::Node(NodeId((i % 2) as u32)));
        }
        let cluster = app
            .transform(&["RMI"])
            .unwrap()
            .deploy(2, seed, Box::new(policy));
        cluster.network().fault_plan(|f| f.drop_probability = 0.10);
        let trace = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)]);
        assert!(
            clean.equivalent_modulo_network(&trace),
            "seed {seed}: clean:\n{clean}\ngot:\n{trace}"
        );
    }
}

#[test]
fn unaffected_traffic_keeps_flowing_during_partition() {
    // A three-node cluster with a partition between 0 and 1: node 2 remains
    // reachable from node 0.
    let mut app = Application::new();
    let obs = app.observer();
    generate_app(
        app.universe_mut(),
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
        &AppSpec {
            inheritance: false,
            arrays: false,
            classes: 2,
            int_fields: 1,
            statics: false,
            seed: 5,
        },
    );
    let policy = StaticPolicy::new().place("C0", Placement::Node(NodeId(2)));
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 7, Box::new(policy));
    cluster
        .network()
        .fault_plan(|f| f.partition(NodeId(0), NodeId(1)));
    // C0 lives on node 2 (C1 placed at creator, i.e. node 2 as well since
    // C0's constructor creates it there): the whole chain avoids node 1.
    let c0 = cluster
        .new_instance(NodeId(0), "C0", 0, vec![Value::Int(3)])
        .unwrap();
    let r = cluster
        .call_method(NodeId(0), c0, "compute", vec![Value::Int(1)])
        .unwrap();
    assert!(matches!(r, Value::Int(_)));
}
