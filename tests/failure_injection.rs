//! The "modulo network failure" clause (paper Sections 1 & 4): distributing
//! an application can introduce network failures; equivalence is required
//! only up to those failures. These tests inject drops, partitions and
//! crashes and check (a) failures surface as network failures — never as
//! silent wrong answers — and (b) traces stay equivalent modulo the
//! failure.

use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::corpus::{generate_app, AppSpec, ObserverHooks};
use rafda::{
    Application, Cluster, NodeId, Placement, RetryPolicy, StaticPolicy, Trace, TraceEvent, Ty,
    Value,
};

fn spec() -> AppSpec {
    AppSpec {
        inheritance: false,
        arrays: false,
        classes: 6,
        int_fields: 2,
        statics: true,
        seed: 77,
    }
}

fn build_cluster() -> Cluster {
    let mut app = Application::new();
    let obs = app.observer();
    generate_app(
        app.universe_mut(),
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
        &spec(),
    );
    let mut policy = StaticPolicy::new().default_statics(NodeId(1));
    for i in 0..6 {
        policy = policy.place(&format!("C{i}"), Placement::Node(NodeId((i % 2) as u32)));
    }
    app.transform(&["RMI"])
        .unwrap()
        .deploy(2, 7, Box::new(policy))
}

fn clean_trace() -> Trace {
    let cluster = build_cluster();
    cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)])
}

#[test]
fn partition_mid_workload_yields_prefix_then_network_failure() {
    let clean = clean_trace();
    assert!(clean.len() > 2);

    let cluster = build_cluster();
    // Run once cleanly to warm placement, then partition and run again.
    cluster
        .network()
        .fault_plan(|f| f.partition(NodeId(0), NodeId(1)));
    let failed = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)]);
    // The failed run must end in a network failure…
    assert!(
        matches!(failed.events().last(), Some(TraceEvent::NetworkFailure(_))),
        "{failed}"
    );
    // …and be equivalent to the clean run modulo that failure.
    assert!(
        clean.equivalent_modulo_network(&failed),
        "clean:\n{clean}\nfailed:\n{failed}"
    );
    assert!(failed.equivalent_modulo_network(&clean), "symmetry");
}

#[test]
fn crash_surfaces_as_network_failure() {
    let cluster = build_cluster();
    cluster.network().fault_plan(|f| f.crash(NodeId(1)));
    let failed = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)]);
    assert!(matches!(
        failed.events().last(),
        Some(TraceEvent::NetworkFailure(m)) if m.contains("crashed")
    ));
    // Recovery restores full service.
    cluster.network().fault_plan(|f| f.recover(NodeId(1)));
    let after = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)]);
    // Statics retain their mutated values across runs, so compare only the
    // failure-freeness, not the exact values.
    assert!(
        !after
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::NetworkFailure(_))),
        "{after}"
    );
}

#[test]
fn message_drops_never_corrupt_results() {
    // Under heavy loss, every run either matches the clean trace (drops
    // absorbed by retries) or ends with a typed network failure — never a
    // divergent value.
    let clean = clean_trace();
    for seed in 0..12u64 {
        let mut app = Application::new();
        let obs = app.observer();
        generate_app(
            app.universe_mut(),
            ObserverHooks {
                class: obs.class,
                emit: obs.emit,
            },
            &spec(),
        );
        let mut policy = StaticPolicy::new().default_statics(NodeId(1));
        for i in 0..6 {
            policy = policy.place(&format!("C{i}"), Placement::Node(NodeId((i % 2) as u32)));
        }
        let cluster = app
            .transform(&["RMI"])
            .unwrap()
            .deploy(2, seed, Box::new(policy));
        cluster.network().fault_plan(|f| f.drop_probability = 0.10);
        let trace = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)]);
        assert!(
            clean.equivalent_modulo_network(&trace),
            "seed {seed}: clean:\n{clean}\ngot:\n{trace}"
        );
    }
}

/// A two-node Counter deployment: the counter lives on node 1, calls come
/// from node 0, so every `add` is one request/reply exchange.
fn counter_cluster(seed: u64) -> Cluster {
    let mut app = Application::new();
    let u = app.universe_mut();
    let c = u.declare("Counter", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, c);
    let v = cb.field(Field::new("v", Ty::Int));
    let mut mb = MethodBuilder::new(1);
    mb.ret();
    cb.ctor(u, vec![], Some(mb.finish()));
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(c, v);
    mb.load_local(1).add();
    mb.put_field(c, v);
    mb.load_this().get_field(c, v).ret_value();
    cb.method(u, "add", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(u);
    let policy = StaticPolicy::new().place("Counter", Placement::Node(NodeId(1)));
    app.transform(&["RMI"])
        .unwrap()
        .deploy(2, seed, Box::new(policy))
}

#[test]
fn drops_are_retried_to_success_with_identical_results() {
    // E7 with fault tolerance: under a 10% drop rate and the default
    // RetryPolicy, the run no longer ends in a network failure — it
    // produces the *identical* trace, only later on the simulated clock.
    let clean = clean_trace();
    let cluster = build_cluster();
    assert_eq!(cluster.retry_policy(), RetryPolicy::default());
    cluster.network().fault_plan(|f| f.drop_probability = 0.10);
    let trace = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)]);
    assert_eq!(trace, clean, "retries must hide drops entirely");
    let stats = cluster.stats();
    assert!(
        stats.retries > 0,
        "a 10% drop rate must trigger retries: {stats}"
    );
    assert_eq!(stats.net_failures, 0, "{stats}");
    assert!(
        stats.attempts[1..].iter().sum::<u64>() > 0,
        "some exchange must have needed more than one attempt: {stats:?}"
    );
}

#[test]
fn retry_runs_are_deterministic_per_seed() {
    for seed in [1u64, 7, 99] {
        let run = || {
            let mut app = Application::new();
            let obs = app.observer();
            generate_app(
                app.universe_mut(),
                ObserverHooks {
                    class: obs.class,
                    emit: obs.emit,
                },
                &spec(),
            );
            let mut policy = StaticPolicy::new().default_statics(NodeId(1));
            for i in 0..6 {
                policy = policy.place(&format!("C{i}"), Placement::Node(NodeId((i % 2) as u32)));
            }
            let cluster = app
                .transform(&["RMI"])
                .unwrap()
                .deploy(2, seed, Box::new(policy));
            cluster.network().fault_plan(|f| f.drop_probability = 0.10);
            let trace = cluster.run_observed(NodeId(0), "Driver", "main", vec![Value::Int(4)]);
            (trace, cluster.stats(), cluster.network().now())
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "seed {seed}: trace");
        assert_eq!(a.1, b.1, "seed {seed}: stats (incl. retry counts)");
        assert_eq!(a.2, b.2, "seed {seed}: simulated clock");
    }
}

#[test]
fn reply_drop_retransmit_does_not_double_apply() {
    // The at-most-once regression: the server executes `add(5)`, the
    // *reply* is lost, the client retransmits. The retransmission must be
    // answered from the reply cache — not applied a second time.
    let cluster = counter_cluster(3);
    let counter = cluster
        .new_instance(NodeId(0), "Counter", 0, vec![])
        .unwrap();
    cluster.pin(NodeId(0), &counter);
    let before = cluster.stats();
    // The next exchange's request gets sequence `seq`, its reply `seq + 1`.
    let seq = cluster.network().transmit_seq();
    cluster.network().fault_plan(|f| f.drop_message(seq + 1));
    let r = cluster
        .call_method(NodeId(0), counter.clone(), "add", vec![Value::Int(5)])
        .unwrap();
    assert_eq!(r, Value::Int(5));
    // Probe with a no-op delta: a double-applied add(5) would read 10.
    let r = cluster
        .call_method(NodeId(0), counter, "add", vec![Value::Int(0)])
        .unwrap();
    assert_eq!(r, Value::Int(5), "mutation applied twice");
    let stats = cluster.stats();
    assert_eq!(stats.dedup_hits - before.dedup_hits, 1, "{stats}");
    assert_eq!(stats.retries - before.retries, 1, "{stats}");
    assert_eq!(stats.retransmits - before.retransmits, 1, "{stats}");
    assert_eq!(stats.net_failures, 0, "{stats}");
}

#[test]
fn request_drop_is_retried_without_dedup() {
    // Complementary case: the *request* is lost, so the server never ran
    // the method — the retransmission executes it (exactly once overall).
    let cluster = counter_cluster(4);
    let counter = cluster
        .new_instance(NodeId(0), "Counter", 0, vec![])
        .unwrap();
    cluster.pin(NodeId(0), &counter);
    let before = cluster.stats();
    let seq = cluster.network().transmit_seq();
    cluster.network().fault_plan(|f| f.drop_message(seq));
    let r = cluster
        .call_method(NodeId(0), counter.clone(), "add", vec![Value::Int(7)])
        .unwrap();
    assert_eq!(r, Value::Int(7));
    let r = cluster
        .call_method(NodeId(0), counter, "add", vec![Value::Int(0)])
        .unwrap();
    assert_eq!(r, Value::Int(7));
    let stats = cluster.stats();
    assert_eq!(stats.retries - before.retries, 1, "{stats}");
    assert_eq!(stats.dedup_hits - before.dedup_hits, 0, "{stats}");
}

#[test]
fn exhausted_retries_surface_the_typed_failure() {
    // Non-transient failures fail fast with attempts == 1; pure drops with
    // retry disabled surface as Dropped after exactly 1 attempt; a fully
    // lossy link exhausts the whole budget.
    use rafda::NetFailureKind;
    let cluster = counter_cluster(5);
    let counter = cluster
        .new_instance(NodeId(0), "Counter", 0, vec![])
        .unwrap();
    cluster.pin(NodeId(0), &counter);

    cluster.network().fault_plan(|f| f.drop_probability = 1.0);
    let err = cluster
        .call_method(NodeId(0), counter.clone(), "add", vec![Value::Int(1)])
        .unwrap_err();
    let nf = err.net_failure().expect("typed network failure");
    assert_eq!(nf.kind, NetFailureKind::Dropped);
    assert_eq!(nf.attempts, RetryPolicy::default().max_attempts);
    assert!(err.to_string().contains("after 6 attempts"), "{err}");

    cluster.network().fault_plan(|f| f.drop_probability = 0.0);
    cluster
        .network()
        .fault_plan(|f| f.partition(NodeId(0), NodeId(1)));
    let err = cluster
        .call_method(NodeId(0), counter, "add", vec![Value::Int(1)])
        .unwrap_err();
    let nf = err.net_failure().expect("typed network failure");
    assert_eq!(nf.kind, NetFailureKind::Partitioned { from: 0, to: 1 });
    assert_eq!(nf.attempts, 1, "non-transient failures must not be retried");
    let stats = cluster.stats();
    assert_eq!(stats.net_failures, 2, "{stats}");
}

#[test]
fn backoff_is_charged_to_the_simulated_clock() {
    // Two identical deployments; `b` additionally loses one reply and must
    // pay for the loss detection, the backoff and the retransmission.
    let a = counter_cluster(6);
    let b = counter_cluster(6);
    let ca = a.new_instance(NodeId(0), "Counter", 0, vec![]).unwrap();
    let cb = b.new_instance(NodeId(0), "Counter", 0, vec![]).unwrap();
    assert_eq!(a.network().now(), b.network().now());
    let seq = b.network().transmit_seq();
    b.network().fault_plan(|f| f.drop_message(seq + 1));
    a.call_method(NodeId(0), ca, "add", vec![Value::Int(1)])
        .unwrap();
    b.call_method(NodeId(0), cb, "add", vec![Value::Int(1)])
        .unwrap();
    assert!(
        b.network().now() > a.network().now(),
        "retried run must cost simulated time: {:?} vs {:?}",
        b.network().now(),
        a.network().now()
    );
}

#[test]
fn unaffected_traffic_keeps_flowing_during_partition() {
    // A three-node cluster with a partition between 0 and 1: node 2 remains
    // reachable from node 0.
    let mut app = Application::new();
    let obs = app.observer();
    generate_app(
        app.universe_mut(),
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
        &AppSpec {
            inheritance: false,
            arrays: false,
            classes: 2,
            int_fields: 1,
            statics: false,
            seed: 5,
        },
    );
    let policy = StaticPolicy::new().place("C0", Placement::Node(NodeId(2)));
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 7, Box::new(policy));
    cluster
        .network()
        .fault_plan(|f| f.partition(NodeId(0), NodeId(1)));
    // C0 lives on node 2 (C1 placed at creator, i.e. node 2 as well since
    // C0's constructor creates it there): the whole chain avoids node 1.
    let c0 = cluster
        .new_instance(NodeId(0), "C0", 0, vec![Value::Int(3)])
        .unwrap();
    let r = cluster
        .call_method(NodeId(0), c0, "compute", vec![Value::Int(1)])
        .unwrap();
    assert!(matches!(r, Value::Int(_)));
}
