//! Causal distributed tracing acceptance tests: one trace per top-level
//! operation across all hops, retransmissions linked via `retry_of`, and
//! byte-identical telemetry across same-seed runs.

use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{sample, ClassKind, Field};
use rafda::telemetry::SpanOutcome;
use rafda::{
    Application, Cluster, NodeId, Placement, RetryPolicy, RuntimeStats, Span, SpanLog,
    StaticPolicy, Ty, Value,
};

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);

/// The paper's Figure 2 program spread over three nodes: the driver on
/// node 0, X's statics/instances on node 2, Y's on node 1 — so `x.m()`
/// from node 0 hops 0 -> 2 -> 1.
fn three_node_cluster(seed: u64) -> Cluster {
    let mut app = Application::new();
    sample::build_figure2(app.universe_mut());
    let policy = StaticPolicy::new()
        .place("Y", Placement::Node(N1))
        .place("X", Placement::Node(N2))
        .default_statics(N0);
    app.transform(&["RMI"])
        .unwrap()
        .deploy(3, seed, Box::new(policy))
}

fn find_span(log: &SpanLog, pred: impl Fn(&Span) -> bool) -> &Span {
    log.spans()
        .iter()
        .find(|s| pred(s))
        .expect("expected span missing")
}

#[test]
fn multi_hop_call_is_one_trace_with_a_cross_node_parent_chain() {
    let cluster = three_node_cluster(5);
    let y = cluster
        .new_instance(N0, "Y", 0, vec![Value::Int(3)])
        .unwrap();
    let x = cluster.new_instance(N0, "X", 0, vec![y]).unwrap();
    let before = cluster.span_log().spans().len();
    let r = cluster
        .call_method(N0, x, "m", vec![Value::Long(4)])
        .unwrap();
    assert_eq!(r, Value::Int(7));

    let log = cluster.span_log();
    let new = &log.spans()[before..];
    // The client exchange on node 0 roots a fresh trace.
    let exch_x = new
        .iter()
        .find(|s| s.name == "rpc.call" && s.node == 0)
        .expect("client exchange span");
    assert_eq!(exch_x.parent_span_id, 0, "top-level call roots the trace");
    assert_eq!(exch_x.attr_str("class"), Some("X"));
    assert_eq!(exch_x.attr_str("protocol"), Some("RMI"));
    assert!(exch_x.attr_str("method").unwrap().starts_with("m@"));
    let t = exch_x.trace_id;

    // Server dispatch on node 2 parents to the client exchange via the
    // wire context.
    let serve_x = find_span(&log, |s| {
        s.name == "serve.call" && s.node == 2 && s.trace_id == t
    });
    assert_eq!(serve_x.parent_span_id, exch_x.span_id);
    assert_eq!(serve_x.outcome, SpanOutcome::Ok);

    // The nested proxy->proxy call to Y on node 1 stays in the same trace:
    // node 2's client exchange is a child of its own serve span, and node
    // 1's serve span is a child of that exchange.
    let exch_y = find_span(&log, |s| {
        s.name == "rpc.call" && s.node == 2 && s.trace_id == t
    });
    assert_eq!(exch_y.parent_span_id, serve_x.span_id);
    assert_eq!(exch_y.attr_str("class"), Some("Y"));
    let serve_y = find_span(&log, |s| {
        s.name == "serve.call" && s.node == 1 && s.trace_id == t
    });
    assert_eq!(serve_y.parent_span_id, exch_y.span_id);

    // All three nodes appear in the one trace, and the critical path walks
    // the whole chain down to the innermost hop.
    let nodes: std::collections::BTreeSet<u32> = log
        .spans()
        .iter()
        .filter(|s| s.trace_id == t)
        .map(|s| s.node)
        .collect();
    assert_eq!(nodes.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    let path = log.critical_path(t);
    assert_eq!(path.first().map(|s| s.span_id), Some(exch_x.span_id));
    assert!(path.iter().any(|s| s.span_id == serve_y.span_id));
    // Simulated interval nesting: each child lies within its parent.
    assert!(exch_x.start_ns <= serve_x.start_ns && serve_x.end_ns <= exch_x.end_ns);
    assert!(serve_x.start_ns <= exch_y.start_ns && exch_y.end_ns <= serve_x.end_ns);
}

#[test]
fn retransmissions_reuse_the_trace_and_chain_via_retry_of() {
    let cluster = three_node_cluster(11);
    cluster.set_retry_policy(RetryPolicy::default());
    let y = cluster
        .new_instance(N0, "Y", 0, vec![Value::Int(1)])
        .unwrap();
    cluster.pin(N0, &y);
    let net = cluster.network();
    // Kill exactly the request leg of the next RPC: attempt 1 fails in
    // transit, attempt 2 retransmits the identical frame.
    let seq = net.transmit_seq();
    net.fault_plan(|f| f.drop_message(seq));
    let before = cluster.span_log().spans().len();
    let r = cluster
        .call_method(N0, y.clone(), "n", vec![Value::Long(5)])
        .unwrap();
    assert_eq!(r, Value::Int(6));

    let log = cluster.span_log();
    let new = &log.spans()[before..];
    let exch = new
        .iter()
        .find(|s| s.name == "rpc.call")
        .expect("exchange span");
    let attempts: Vec<&Span> = new
        .iter()
        .filter(|s| s.name == "rpc.attempt" && s.parent_span_id == exch.span_id)
        .collect();
    assert_eq!(attempts.len(), 2, "one failed attempt + one retransmission");
    assert_eq!(attempts[0].outcome, SpanOutcome::NetFailure);
    assert_eq!(attempts[0].retry_of, None);
    assert_eq!(attempts[1].outcome, SpanOutcome::Ok);
    assert_eq!(
        attempts[1].retry_of,
        Some(attempts[0].span_id),
        "the retransmission points at the attempt it retries"
    );
    // Same trace, fresh span ids.
    assert_eq!(attempts[0].trace_id, exch.trace_id);
    assert_eq!(attempts[1].trace_id, exch.trace_id);
    assert_ne!(attempts[0].span_id, attempts[1].span_id);
    assert_eq!(
        exch.attr("attempts").map(|a| a.to_string()),
        Some("2".into())
    );

    // Now kill a reply leg: the server runs once, the retransmission is
    // answered from the reply cache and its serve span says so.
    let seq = net.transmit_seq() + 1;
    net.fault_plan(|f| f.drop_message(seq));
    let before = cluster.span_log().spans().len();
    let r = cluster
        .call_method(N0, y, "n", vec![Value::Long(7)])
        .unwrap();
    assert_eq!(r, Value::Int(8));
    let log = cluster.span_log();
    let serves: Vec<&Span> = log.spans()[before..]
        .iter()
        .filter(|s| s.name == "serve.call")
        .collect();
    assert_eq!(serves.len(), 2, "original dispatch + dedup hit");
    assert_eq!(serves[0].attr("cached"), None);
    assert_eq!(
        serves[1].attr("cached").map(|a| a.to_string()),
        Some("true".into())
    );
    assert_eq!(serves[0].trace_id, serves[1].trace_id);
}

/// Run one fixed scenario (calls, a failure, a migration) and return the
/// cluster — the determinism tests run it twice and diff the telemetry.
fn scripted_scenario(seed: u64) -> Cluster {
    let cluster = three_node_cluster(seed);
    let y = cluster
        .new_instance(N0, "Y", 0, vec![Value::Int(3)])
        .unwrap();
    let x = cluster.new_instance(N0, "X", 0, vec![y]).unwrap();
    cluster.pin(N0, &x);
    for i in 0..4 {
        cluster
            .call_method(N0, x.clone(), "m", vec![Value::Long(i)])
            .unwrap();
    }
    let net = cluster.network();
    let seq = net.transmit_seq();
    net.fault_plan(|f| f.drop_message(seq));
    cluster
        .call_method(N0, x.clone(), "m", vec![Value::Long(9)])
        .unwrap();
    cluster
}

#[test]
fn telemetry_is_byte_identical_across_same_seed_runs() {
    let a = scripted_scenario(42);
    let b = scripted_scenario(42);
    assert_eq!(a.span_log(), b.span_log(), "span logs diverged");
    assert_eq!(
        a.span_log().chrome_trace_json(),
        b.span_log().chrome_trace_json(),
        "chrome export diverged"
    );
    assert_eq!(
        a.span_log().method_histograms(),
        b.span_log().method_histograms(),
        "histograms diverged"
    );
    assert_eq!(
        a.telemetry_report(10),
        b.telemetry_report(10),
        "report diverged"
    );
    // A different seed shifts the simulated timings.
    let c = scripted_scenario(43);
    assert_ne!(a.span_log(), c.span_log());

    // The per-node breakdown is exhaustive: folding every node's stats
    // through `merge` reproduces the cluster-wide view exactly.
    let mut folded = RuntimeStats::default();
    for n in 0..a.node_count() {
        folded.merge(&a.node_stats(NodeId(n)));
    }
    assert_eq!(folded, a.stats(), "per-node sums equal the merged view");
}

/// A batched, replicated counter: deferred `inc` mutations ride the
/// outcall queue, then the home crashes and the next read fails over to a
/// promoted backup. Batching and failover had never been traced together.
fn batched_failover_scenario(seed: u64) -> Cluster {
    let mut app = Application::new();
    let u = app.universe_mut();
    let c = u.declare("C", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, c);
    let v = cb.field(Field::new("v", Ty::Int));
    let mut mb = MethodBuilder::new(2);
    mb.load_this().load_local(1).put_field(c, v).ret();
    cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
    // void inc(int d) { v += d; } — void, so batching can defer it.
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(c, v);
    mb.load_local(1).add();
    mb.put_field(c, v);
    mb.ret();
    cb.method(u, "inc", vec![Ty::Int], Ty::Void, Some(mb.finish()));
    cb.finish(u);

    let policy = StaticPolicy::new()
        .place("C", Placement::Node(N1))
        .default_statics(N0)
        .batch("C", true)
        .replicate("C", 1);
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, seed, Box::new(policy));
    cluster.enable_monitors();
    let obj = cluster
        .new_instance(N0, "C", 0, vec![Value::Int(0)])
        .unwrap();
    cluster.pin(N0, &obj);
    let read = || {
        cluster
            .call_method(N0, obj.clone(), "get_v", vec![])
            .unwrap()
    };
    for d in 1..4 {
        cluster
            .call_method(N0, obj.clone(), "inc", vec![Value::Int(d)])
            .unwrap();
    }
    assert_eq!(read(), Value::Int(6), "flush drained the deferred incs");
    cluster.crash(N1);
    // The read fails over: the backup promotes and serves 6.
    assert_eq!(read(), Value::Int(6));
    for d in 1..3 {
        cluster
            .call_method(N0, obj.clone(), "inc", vec![Value::Int(d)])
            .unwrap();
    }
    assert_eq!(read(), Value::Int(9));
    assert_eq!(cluster.check_invariants(), vec![], "monitors stay silent");
    cluster
}

#[test]
fn batched_failover_telemetry_is_byte_identical_across_same_seed_runs() {
    let a = batched_failover_scenario(17);
    let b = batched_failover_scenario(17);
    assert_eq!(a.span_log(), b.span_log(), "span logs diverged");
    assert_eq!(
        a.span_log().chrome_trace_json(),
        b.span_log().chrome_trace_json(),
        "chrome export diverged"
    );
    assert_eq!(
        a.telemetry_report(10),
        b.telemetry_report(10),
        "report diverged"
    );
    assert_eq!(a.prometheus_text(), b.prometheus_text());
    assert_eq!(a.metrics_json(), b.metrics_json());
    // Both features genuinely engaged, in one trace history.
    let stats = a.stats();
    assert!(stats.batched_ops > 0, "batching never deferred: {stats}");
    assert!(stats.failovers > 0, "no failover happened: {stats}");
    assert!(a
        .span_log()
        .spans()
        .iter()
        .any(|s| s.name == "rpc.failover"));
}

#[test]
fn histograms_and_report_cover_the_observed_methods() {
    let cluster = scripted_scenario(7);
    let log = cluster.span_log();
    let hists = log.method_histograms();
    let m_key = hists
        .keys()
        .find(|k| k.class == "X" && k.method.starts_with("m@"))
        .expect("X.m histogram");
    assert_eq!(m_key.protocol, "RMI");
    assert_eq!(hists[m_key].count, 5, "four clean calls + one retried");
    assert!(hists[m_key].mean() > 0);
    assert!(hists[m_key].percentile(50) <= hists[m_key].percentile(99));

    let report = cluster.telemetry_report(5);
    assert!(report.contains("top 5 slowest spans"), "{report}");
    assert!(report.contains("hottest methods"), "{report}");
    assert!(report.contains("per-link round-trip latency"), "{report}");
    assert!(report.contains("X.m@"), "{report}");

    let links = log.link_percentiles();
    assert!(
        links
            .iter()
            .any(|l| l.from == 0 && l.to == 2 && l.count >= 5),
        "driver -> X-home link summarised: {links:?}"
    );
    assert!(links.iter().all(|l| l.p50 <= l.p95 && l.p95 <= l.p99));
}

#[test]
fn chrome_export_writes_loadable_trace_events() {
    let cluster = scripted_scenario(3);
    let dir = std::env::temp_dir().join("rafda_telemetry_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    cluster.export_chrome_trace(&path).unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    assert_eq!(json, cluster.span_log().chrome_trace_json());
    assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"M\"") && json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"name\":\"rpc.call\""));
    assert!(json.contains("\"retry_of\""), "retry links survive export");
    std::fs::remove_file(&path).ok();
}

#[test]
fn chrome_export_escapes_control_characters_in_names_and_attributes() {
    // Golden check for the JSON string escaper: spans can carry arbitrary
    // method strings (a hostile class name, a corrupted frame echoed into
    // a fault message), and the export must stay parseable.
    let mut log = SpanLog::new();
    let h = log.start_span("rpc\u{1}call", 0, 10);
    log.set_attr(h, "method", "tab\there\nnl\r\u{8}\u{1f}end");
    log.set_attr(h, "class", "quote\"back\\slash");
    log.end_span(h, 20, SpanOutcome::Ok);
    let json = log.chrome_trace_json();
    assert!(json.contains("\"name\":\"rpc\\u0001call\""), "{json}");
    assert!(
        json.contains("\"method\":\"tab\\there\\nnl\\r\\u0008\\u001fend\""),
        "{json}"
    );
    assert!(
        json.contains("\"class\":\"quote\\\"back\\\\slash\""),
        "{json}"
    );
    // No raw control byte may survive anywhere in the document.
    assert!(
        json.chars().all(|c| c >= ' ' || c == '\n'),
        "raw control characters leaked into the export"
    );
}

#[test]
fn migration_is_traced_with_its_state_transfer() {
    let cluster = three_node_cluster(9);
    let y = cluster
        .new_instance(N0, "Y", 0, vec![Value::Int(3)])
        .unwrap();
    let x = cluster.new_instance(N0, "X", 0, vec![y]).unwrap();
    cluster.pin(N0, &x);
    // Find Y's home handle on node 1 and migrate it to node 2.
    let vm1 = cluster.vm(N1);
    let mut y_home = None;
    vm1.with_heap(|heap| {
        for h in heap.handles() {
            if let Some(class) = heap.class_of(h) {
                if cluster.universe().class(class).name == "Y_O_Local" {
                    y_home = Some(h);
                }
            }
        }
    });
    cluster
        .migrate(N1, y_home.expect("Y on node 1"), N2)
        .unwrap();

    let log = cluster.span_log();
    let mig = find_span(&log, |s| s.name == "migrate");
    assert_eq!(mig.outcome, SpanOutcome::Ok);
    assert_eq!(mig.attr_str("class"), Some("Y"));
    // The state transfer (install RPC + its dispatch) is inside the
    // migration span's trace.
    let install = find_span(&log, |s| s.name == "rpc.install");
    assert_eq!(install.trace_id, mig.trace_id);
    assert_eq!(install.parent_span_id, mig.span_id);
    let serve_install = find_span(&log, |s| s.name == "serve.install");
    assert_eq!(serve_install.trace_id, mig.trace_id);
    assert_eq!(serve_install.node, 2);
}

#[test]
fn describe_reflects_registries_stats_and_crash_state() {
    let cluster = three_node_cluster(21);
    let y = cluster
        .new_instance(N0, "Y", 0, vec![Value::Int(3)])
        .unwrap();
    let x = cluster.new_instance(N0, "X", 0, vec![y]).unwrap();
    cluster
        .call_method(N0, x, "m", vec![Value::Long(2)])
        .unwrap();

    let before = cluster.describe();
    assert_eq!(before.len(), 3);
    // The driver node imports X and Y; as the statics owner it also
    // exports the class singletons the other nodes discovered.
    assert!(before[0].exports >= 1, "{:?}", before[0]);
    assert!(before[0].imports >= 2, "{:?}", before[0]);
    // X's home exports X and holds a proxy import for Y; Y's home exports Y.
    assert!(before[2].exports >= 1, "{:?}", before[2]);
    assert!(before[2].imports >= 1, "{:?}", before[2]);
    assert!(before[1].exports >= 1, "{:?}", before[1]);
    // Statics resolve singletons on their owners; every dispatch left a
    // cached reply for at-most-once dedup.
    assert!(
        before[1].singletons.contains(&"Y".to_owned()),
        "{:?}",
        before[1]
    );
    assert!(before[1].cached_replies > 0);
    assert!(before[2].cached_replies > 0);
    assert!(before.iter().all(|s| !s.crashed));
    assert!(before[1].live_objects > 0);

    // Crash Y's home: only its summary flips, and Display says so.
    cluster.network().fault_plan(|f| f.crash(N1));
    let after = cluster.describe();
    assert!(!after[0].crashed && after[1].crashed && !after[2].crashed);
    assert!(
        after[1].to_string().contains("node1 (crashed):"),
        "{}",
        after[1]
    );
    assert!(!after[0].to_string().contains("crashed"), "{}", after[0]);
    // Everything else is unchanged by the crash flag.
    assert_eq!(after[1].exports, before[1].exports);
    assert_eq!(after[1].singletons, before[1].singletons);
}
