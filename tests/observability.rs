//! The observability plane end to end: the stale-read canary (a deliberate
//! injected violation that the monitor must catch, with the offending span
//! identified), the reflective `rafda.Introspection` object served over the
//! normal RMI path, byte-identical metric exports across same-seed runs,
//! and the per-node-sums-equal-merged-view contract of `node_stats`.

use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::vm::Handle;
use rafda::{
    declare_introspection, Application, Cluster, NodeId, Placement, RuntimeStats, StaticPolicy, Ty,
    Value, INTROSPECTION_CLASS,
};

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);

/// The counter class from the property-cache suite: `C { int v; C(int);
/// int bump(int d) }`.
fn counter_app() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let c = u.declare("C", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, c);
    let v = cb.field(Field::new("v", Ty::Int));
    let mut mb = MethodBuilder::new(2);
    mb.load_this().load_local(1).put_field(c, v).ret();
    cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(c, v);
    mb.load_local(1).add();
    mb.put_field(c, v);
    mb.load_this().get_field(c, v).ret_value();
    cb.method(u, "bump", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(u);
    app
}

/// Deploy `C` cacheable with its home on node 1, create one instance from
/// node 0 and warm its property cache.
fn warmed_cached_counter() -> (Cluster, Value) {
    let policy = StaticPolicy::new()
        .place("C", Placement::Node(N1))
        .default_statics(N0)
        .cache("C", true);
    let cluster = counter_app()
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 42, Box::new(policy));
    cluster.enable_monitors();
    let c = cluster
        .new_instance(N0, "C", 0, vec![Value::Int(5)])
        .unwrap();
    cluster.pin(N0, &c);
    // Miss then hit: the cache is warm and monitors saw a healthy hit.
    for _ in 0..2 {
        assert_eq!(
            cluster.call_method(N0, c.clone(), "get_v", vec![]).unwrap(),
            Value::Int(5)
        );
    }
    (cluster, c)
}

/// The home (`C_O_Local`) handle of the single counter instance on `node`.
fn home_handle(cluster: &Cluster, node: NodeId) -> Handle {
    let mut found = None;
    cluster.vm(node).with_heap(|heap| {
        for h in heap.handles() {
            if let Some(class) = heap.class_of(h) {
                if cluster.universe().class(class).name == "C_O_Local" {
                    found = Some(h);
                }
            }
        }
    });
    found.expect("counter home")
}

/// The canary: skip the tombstone a migration must write, so the proxy
/// cache on node 0 keeps serving the pre-migration value. The stale-read
/// monitor must flag exactly that hit and point at its span.
#[test]
fn stale_read_canary_is_caught_with_the_offending_span() {
    let (cluster, c) = warmed_cached_counter();
    assert_eq!(cluster.monitor_violations(), vec![]);

    // Inject the bug: the migration "forgets" to tombstone the old
    // location, leaving node 0's cached read valid by version tag.
    cluster.debug_skip_next_tombstone();
    cluster.migrate(N1, home_handle(&cluster, N1), N2).unwrap();

    // The read is served from the cache — through a location that now
    // only forwards. That is precisely a stale read.
    assert_eq!(
        cluster.call_method(N0, c.clone(), "get_v", vec![]).unwrap(),
        Value::Int(5)
    );

    let violations = cluster.monitor_violations();
    assert_eq!(violations.len(), 1, "exactly one violation: {violations:?}");
    let v = &violations[0];
    assert_eq!(v.monitor, "stale-read");
    assert!(
        v.message.contains("1#") && v.message.contains("node 0"),
        "message must identify the exchange: {}",
        v.message
    );
    assert_ne!(v.span_id, 0, "violation must point at the offending span");
    let log = cluster.span_log();
    let span = log
        .spans()
        .iter()
        .find(|s| s.span_id == v.span_id && s.trace_id == v.trace_id)
        .expect("offending span present in the log");
    assert_eq!(span.name, "rpc.call");
    assert!(span.attr("cached").is_some(), "the flagged span is the hit");
}

/// Control run: the same migration *with* the tombstone stays silent — the
/// read goes remote and every monitor (including the quiescent-point
/// checks) sees a healthy cluster.
#[test]
fn healthy_migration_keeps_all_monitors_silent() {
    let (cluster, c) = warmed_cached_counter();
    cluster.migrate(N1, home_handle(&cluster, N1), N2).unwrap();
    assert_eq!(
        cluster.call_method(N0, c.clone(), "get_v", vec![]).unwrap(),
        Value::Int(5)
    );
    assert_eq!(cluster.check_invariants(), vec![]);
}

/// The reflective capstone: a `rafda.Introspection` instance homed on node
/// 1, reached from node 0 through an ordinary generated proxy. Its getters
/// serve the cluster's own state, its refresh invalidates cached reads,
/// and the telemetry traffic is itself counted by the metrics it serves.
#[test]
fn introspection_object_serves_cluster_state_over_rmi() {
    let mut app = counter_app();
    declare_introspection(app.universe_mut());
    let policy = StaticPolicy::new()
        .place("C", Placement::Node(N2))
        .place(INTROSPECTION_CLASS, Placement::Node(N1))
        .default_statics(N0)
        .cache(INTROSPECTION_CLASS, true);
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 7, Box::new(policy));

    // Some application traffic for the stats to describe.
    let c = cluster
        .new_instance(N0, "C", 0, vec![Value::Int(1)])
        .unwrap();
    for d in 0..4 {
        cluster
            .call_method(N0, c.clone(), "bump", vec![Value::Int(d)])
            .unwrap();
    }

    let insp = cluster
        .new_instance(N0, INTROSPECTION_CLASS, 0, vec![])
        .unwrap();
    let calls_before = cluster.stats().rpc_calls;
    cluster
        .call_method(N0, insp.clone(), "refresh", vec![])
        .unwrap();

    let get = |name: &str| -> String {
        cluster
            .call_method(N0, insp.clone(), name, vec![])
            .unwrap()
            .as_str()
            .expect("introspection getters return strings")
            .to_string()
    };
    let stats = get("get_stats");
    assert!(
        stats.contains("rpc exchanges"),
        "stats snapshot rendered: {stats}"
    );
    let policy_text = get("get_policy");
    assert!(
        policy_text.contains("rafda.Introspection: protocol=RMI")
            && policy_text.contains("cacheable=true"),
        "policy table lists the class itself: {policy_text}"
    );
    let placement = get("get_placement");
    assert!(
        placement.contains("node1") && placement.contains("rafda.Introspection"),
        "placement table shows the object's own home: {placement}"
    );
    let prom = get("get_prometheus");
    assert!(
        prom.contains("# TYPE rafda_rpc_calls_total counter")
            && prom.contains("rafda_exchange_attempts"),
        "prometheus snapshot served through a getter: {prom}"
    );
    assert!(
        cluster.stats().rpc_calls > calls_before,
        "introspection traffic goes over the normal RMI path and is counted"
    );

    // node_stats(int) is a real remote method, not a property.
    let n1 = cluster
        .call_method(N0, insp.clone(), "node_stats", vec![Value::Int(1)])
        .unwrap();
    assert!(n1.as_str().unwrap().contains("rpc exchanges"));

    // Coherence: getters are cacheable, and refresh is a mutating call —
    // it bumps the object's version, so a re-read after refresh sees the
    // new snapshot rather than a stale cached one.
    let first = get("get_stats");
    assert_eq!(get("get_stats"), first, "second read served consistently");
    cluster
        .call_method(N0, insp.clone(), "refresh", vec![])
        .unwrap();
    let second = get("get_stats");
    assert_ne!(second, first, "refresh must invalidate cached reads");
}

/// A small mixed workload: creation, mutation, cached reads, a migration.
fn run_workload(seed: u64) -> Cluster {
    let policy = StaticPolicy::new()
        .place("C", Placement::Node(N1))
        .default_statics(N0)
        .cache("C", true);
    let cluster = counter_app()
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, seed, Box::new(policy));
    let c = cluster
        .new_instance(N0, "C", 0, vec![Value::Int(5)])
        .unwrap();
    cluster.pin(N0, &c);
    for d in 0..3 {
        cluster
            .call_method(N0, c.clone(), "bump", vec![Value::Int(d)])
            .unwrap();
        cluster.call_method(N0, c.clone(), "get_v", vec![]).unwrap();
        cluster.call_method(N0, c.clone(), "get_v", vec![]).unwrap();
    }
    cluster.migrate(N1, home_handle(&cluster, N1), N2).unwrap();
    cluster.call_method(N0, c.clone(), "get_v", vec![]).unwrap();
    cluster
}

#[test]
fn metric_exports_are_byte_identical_across_same_seed_runs() {
    let a = run_workload(42);
    let b = run_workload(42);
    assert_eq!(a.prometheus_text(), b.prometheus_text());
    assert_eq!(a.metrics_json(), b.metrics_json());
    // And non-trivial: counters moved, time series collected points.
    assert!(a.prometheus_text().lines().any(|l| {
        l.starts_with("rafda_") && l.ends_with(|c: char| c.is_ascii_digit()) && !l.ends_with(" 0")
    }));
    assert!(a.metrics_json().contains("\"series\":\"outqueue_depth\""));
}

#[test]
fn node_stats_fold_by_merge_equals_the_cluster_view() {
    let cluster = run_workload(42);
    let mut folded = RuntimeStats::default();
    for n in 0..cluster.node_count() {
        folded.merge(&cluster.node_stats(NodeId(n)));
    }
    let merged = cluster.stats();
    assert_eq!(folded, merged);
    // The breakdown is a real breakdown: the counter's home (node 1) did
    // serving work the driver (node 0) did not, and vice versa.
    assert!(cluster.node_stats(N1).rpc_calls > 0);
    assert!(cluster.node_stats(N0).cache_hits > 0);
    assert_eq!(cluster.node_stats(N1).cache_hits, 0);
}
