//! Coherent proxy-side property caching: repeated remote `get_f` reads are
//! served locally while the owner's property version is unchanged, every
//! write or migration invalidates, and stale reads are impossible — plus
//! the cluster-wide affinity-count purge on migration (the counts describe
//! calls an object received at a home it no longer has).

use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::vm::Handle;
use rafda::{Application, Cluster, NodeId, Placement, StaticPolicy, Ty, Value};

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);

/// A counter class `C { int v; C(int); int bump(int d) }` — `v` becomes a
/// `get_v`/`set_v` property pair under transformation.
fn counter_app() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let c = u.declare("C", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, c);
    let v = cb.field(Field::new("v", Ty::Int));
    let mut mb = MethodBuilder::new(2);
    mb.load_this().load_local(1).put_field(c, v).ret();
    cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
    // int bump(int d) { v = v + d; return v; }
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(c, v);
    mb.load_local(1).add();
    mb.put_field(c, v);
    mb.load_this().get_field(c, v).ret_value();
    cb.method(u, "bump", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(u);
    app
}

/// Deploy `C` remote to the driver (home on node 1), with property caching
/// for `C` switched per the flag, and create one instance.
fn deployed(cache: bool) -> (Cluster, Value) {
    let policy = StaticPolicy::new()
        .place("C", Placement::Node(N1))
        .default_statics(N0)
        .cache("C", cache);
    let cluster = counter_app()
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 42, Box::new(policy));
    let c = cluster
        .new_instance(N0, "C", 0, vec![Value::Int(5)])
        .unwrap();
    cluster.pin(N0, &c);
    (cluster, c)
}

fn get_v(cluster: &Cluster, c: &Value) -> Value {
    cluster.call_method(N0, c.clone(), "get_v", vec![]).unwrap()
}

/// The home (`C_O_Local`) handle of the single counter instance on `node`.
fn home_handle(cluster: &Cluster, node: NodeId) -> Handle {
    let mut found = None;
    cluster.vm(node).with_heap(|heap| {
        for h in heap.handles() {
            if let Some(class) = heap.class_of(h) {
                if cluster.universe().class(class).name == "C_O_Local" {
                    found = Some(h);
                }
            }
        }
    });
    found.expect("counter home")
}

#[test]
fn repeated_getter_reads_hit_the_cache_and_writes_invalidate() {
    let (cluster, c) = deployed(true);

    // First read goes over the wire and fills the cache.
    let before = cluster.network().stats().messages;
    assert_eq!(get_v(&cluster, &c), Value::Int(5));
    let after_first = cluster.network().stats().messages;
    assert!(after_first > before, "first read is remote");

    // Subsequent reads are served locally: no messages, no clock advance.
    let t = cluster.network().now();
    for _ in 0..5 {
        assert_eq!(get_v(&cluster, &c), Value::Int(5));
    }
    assert_eq!(
        cluster.network().stats().messages,
        after_first,
        "cached reads must not touch the wire"
    );
    assert_eq!(cluster.network().now(), t, "cached reads are free");
    let stats = cluster.stats();
    assert_eq!(stats.cache_hits, 5);
    assert_eq!(stats.cache_misses, 1);

    // Cache hits stay visible in traces, tagged as cached.
    let log = cluster.span_log();
    let hit = log
        .spans()
        .iter()
        .find(|s| s.name == "rpc.call" && s.attr("cached").is_some())
        .expect("cached read span");
    assert_eq!(hit.attr_str("class"), Some("C"));
    assert_eq!(hit.start_ns, hit.end_ns, "a hit spends no simulated time");

    // A remote property write bumps the version: the next read may not
    // serve the stale 5.
    cluster
        .call_method(N0, c.clone(), "set_v", vec![Value::Int(9)])
        .unwrap();
    assert_eq!(get_v(&cluster, &c), Value::Int(9));
    assert!(cluster.stats().cache_invalidations >= 1);

    // An arbitrary mutating method invalidates too.
    assert_eq!(
        cluster
            .call_method(N0, c.clone(), "bump", vec![Value::Int(1)])
            .unwrap(),
        Value::Int(10)
    );
    assert_eq!(get_v(&cluster, &c), Value::Int(10));

    // And the refreshed value is cached again.
    let msgs = cluster.network().stats().messages;
    assert_eq!(get_v(&cluster, &c), Value::Int(10));
    assert_eq!(cluster.network().stats().messages, msgs);
}

#[test]
fn caching_is_off_unless_the_policy_opts_the_class_in() {
    let (cluster, c) = deployed(false);
    let before = cluster.network().stats().messages;
    for _ in 0..3 {
        assert_eq!(get_v(&cluster, &c), Value::Int(5));
    }
    let per_read = (cluster.network().stats().messages - before) / 3;
    assert!(per_read >= 2, "every read is a full remote exchange");
    let stats = cluster.stats();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 0);
    assert_eq!(stats.cache_invalidations, 0);
}

#[test]
fn migration_tombstones_the_old_location_so_reads_are_never_stale() {
    let (cluster, c) = deployed(true);

    // Fill the cache through the (node1, oid) location.
    assert_eq!(get_v(&cluster, &c), Value::Int(5));
    assert_eq!(get_v(&cluster, &c), Value::Int(5));
    assert!(cluster.stats().cache_hits >= 1);

    // Move the object: node 1's export becomes a forwarding proxy.
    cluster.migrate(N1, home_handle(&cluster, N1), N2).unwrap();

    // Mutate at the new home through the (still node1-addressed) proxy,
    // then read: the cached 5 must not surface, now or ever — the old
    // location is permanently uncacheable.
    cluster
        .call_method(N0, c.clone(), "set_v", vec![Value::Int(42)])
        .unwrap();
    assert_eq!(get_v(&cluster, &c), Value::Int(42));
    cluster
        .call_method(N0, c.clone(), "set_v", vec![Value::Int(43)])
        .unwrap();
    assert_eq!(get_v(&cluster, &c), Value::Int(43));

    // Reads through the forwarding chain never repopulate the cache: each
    // one still goes remote.
    let msgs = cluster.network().stats().messages;
    assert_eq!(get_v(&cluster, &c), Value::Int(43));
    assert!(cluster.network().stats().messages > msgs);
}

#[test]
fn migrate_and_pull_purge_affinity_counts_cluster_wide() {
    // Phase 1: calls accrue affinity at the home; a direct migrate()
    // (not via adapt) must still drop them everywhere.
    let (cluster, c) = deployed(false);
    for _ in 0..5 {
        cluster
            .call_method(N0, c.clone(), "bump", vec![Value::Int(1)])
            .unwrap();
    }
    let counts = cluster.affinity_snapshot(N1);
    assert!(!counts.is_empty(), "calls recorded at the home");
    cluster.migrate(N1, home_handle(&cluster, N1), N2).unwrap();
    assert_eq!(
        cluster.affinity_snapshot(N1),
        vec![],
        "stale counts for the migrated object survived"
    );

    // Phase 2: same for pull_local from the caller's side.
    let (cluster, c) = deployed(false);
    for _ in 0..5 {
        cluster
            .call_method(N0, c.clone(), "bump", vec![Value::Int(1)])
            .unwrap();
    }
    assert!(!cluster.affinity_snapshot(N1).is_empty());
    cluster.pull_local(N0, c.as_ref_handle().unwrap()).unwrap();
    assert_eq!(
        cluster.affinity_snapshot(N1),
        vec![],
        "stale counts survived the pull"
    );
}
