//! "Policy dictates which classes are substitutable" (Section 1): only the
//! shared class `C` is made substitutable; its reference holders `A` and
//! `B` stay un-familied but have their call sites rewritten to `C_O_Int`
//! ("Every reference to a substitutable class must then be transformed to
//! use the extracted interface") — and the Figure 1 scenario still works.

use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::{Application, LocalPolicy, NodeId, Transformer, Ty, Value};

fn figure1_app() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let c = u.declare("C", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(u, c);
        let v = cb.field(Field::new("v", Ty::Int));
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(u, vec![], Some(mb.finish()));
        let mut mb = MethodBuilder::new(2);
        mb.load_this();
        mb.load_this().get_field(c, v);
        mb.load_local(1).add();
        mb.put_field(c, v);
        mb.load_this().get_field(c, v).ret_value();
        cb.method(u, "add", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    }
    for name in ["A", "B"] {
        let id = u.declare(name, ClassKind::Class);
        let mut cb = ClassBuilder::new(u, id);
        let f = cb.field(Field::new("shared", Ty::Object(c)));
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(id, f).ret();
        cb.ctor(u, vec![Ty::Object(c)], Some(mb.finish()));
        let add_sig = u.sig("add", vec![Ty::Int]);
        let mut mb = MethodBuilder::new(2);
        mb.load_this().get_field(id, f);
        mb.load_local(1);
        mb.invoke(add_sig, 1);
        mb.ret_value();
        cb.method(u, "work", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    }
    app
}

#[test]
fn only_c_gets_a_family_but_holders_are_rewritten() {
    let app = figure1_app();
    let transformed = app
        .transform_with(
            Transformer::new()
                .protocols(&["RMI"])
                .substitutable_names(&["C"]),
        )
        .unwrap();
    let u = transformed.universe();
    assert!(u.by_name("C_O_Int").is_some());
    assert!(u.by_name("A_O_Int").is_none());
    assert!(u.by_name("B_O_Int").is_none());
    assert_eq!(transformed.outcome().report.substitutable_count, 1);
    assert_eq!(transformed.outcome().report.rewritten_in_place, 2);
    // A's field type is now the interface.
    let a = u.by_name("A").unwrap();
    let fy = &u.class(a).fields[0];
    assert_eq!(fy.ty, Ty::Object(u.by_name("C_O_Int").unwrap()));
}

#[test]
fn figure1_works_with_only_c_substitutable() {
    let cluster = figure1_app()
        .transform_with(
            Transformer::new()
                .protocols(&["RMI"])
                .substitutable_names(&["C"]),
        )
        .unwrap()
        .deploy(2, 11, Box::new(LocalPolicy::default()));
    let n0 = NodeId(0);
    // A and B are created through the ordinary (non-factory) path — they
    // are not substitutable — but hold interface-typed references to C.
    let c = cluster.new_instance(n0, "C", 0, vec![]).unwrap();
    let a = cluster.new_instance(n0, "A", 0, vec![c.clone()]).unwrap();
    let b = cluster.new_instance(n0, "B", 0, vec![c.clone()]).unwrap();
    assert_eq!(
        cluster
            .call_method(n0, a.clone(), "work", vec![Value::Int(1)])
            .unwrap(),
        Value::Int(1)
    );
    // Only C can migrate — and that is all Figure 1 needs.
    let h = c.as_ref_handle().unwrap();
    cluster.migrate(n0, h, NodeId(1)).unwrap();
    assert_eq!(
        cluster
            .call_method(n0, b, "work", vec![Value::Int(2)])
            .unwrap(),
        Value::Int(3)
    );
    assert_eq!(
        cluster
            .call_method(n0, a, "work", vec![Value::Int(3)])
            .unwrap(),
        Value::Int(6)
    );
    assert!(cluster.network().stats().messages >= 4);
    // A and B themselves are not migratable — the policy decision the
    // substitutable set captures.
    let ah = cluster
        .new_instance(n0, "A", 0, vec![c])
        .unwrap()
        .as_ref_handle()
        .unwrap();
    let err = cluster.migrate(n0, ah, NodeId(1)).unwrap_err();
    assert!(err.to_string().contains("transformed"), "{err}");
}
