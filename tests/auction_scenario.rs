//! End-to-end tests of the auction-house scenario (the middleware-style
//! workload of `rafda::corpus::scenarios`): equivalence across deployments,
//! placement checks, and adaptation of a chatty catalogue.

use rafda::corpus::{build_auction_house, ObserverHooks};
use rafda::{AffinityConfig, Application, NodeId, Placement, StaticPolicy, Trace, Value};

fn build() -> Application {
    let mut app = Application::new();
    let obs = app.observer();
    build_auction_house(
        app.universe_mut(),
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
    );
    app
}

fn original(seed: i32) -> Trace {
    build().run_original("AuctionMain", "main", vec![Value::Int(seed)])
}

#[test]
fn scenario_behaviour_is_seed_sensitive_and_deterministic() {
    let a = original(100);
    let b = original(100);
    let c = original(101);
    assert_eq!(a, b);
    assert_ne!(a, c);
    assert_eq!(a.len(), 4, "{a}");
}

#[test]
fn all_deployments_agree_across_seeds() {
    for seed in [0, 50, 100, 999] {
        let reference = original(seed);
        let rt = build().transform(&["RMI"]).unwrap().deploy_local();
        assert_eq!(
            reference,
            rt.run_observed("AuctionMain", "main", vec![Value::Int(seed)]),
            "local, seed {seed}"
        );
        let policy = StaticPolicy::new()
            .default_statics(NodeId(1))
            .place("Item", Placement::Node(NodeId(1)))
            .place("Auction", Placement::Node(NodeId(1)))
            .place("Bidder", Placement::Node(NodeId(2)));
        let cluster =
            build()
                .transform(&["RMI"])
                .unwrap()
                .deploy(3, seed as u64 + 1, Box::new(policy));
        assert_eq!(
            reference,
            cluster.run_observed(NodeId(0), "AuctionMain", "main", vec![Value::Int(seed)]),
            "distributed, seed {seed}"
        );
    }
}

#[test]
fn audit_log_is_shared_across_all_nodes() {
    // The audit count (static state) must reflect bids made from every
    // node — the uniqueness-of-statics property.
    let policy = StaticPolicy::new().default_statics(NodeId(2));
    let cluster = build()
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 3, Box::new(policy));
    let item = cluster
        .new_instance(
            NodeId(0),
            "Item",
            0,
            vec![Value::str("lamp"), Value::Int(10)],
        )
        .unwrap();
    // Outbid from two different nodes (the item reference is marshalled to
    // node 1 for the second call).
    cluster
        .call_method(NodeId(0), item.clone(), "outbid", vec![Value::Int(20)])
        .unwrap();
    let count = cluster
        .call_static(NodeId(1), "AuditLog", "count", vec![])
        .unwrap();
    assert_eq!(count, Value::Int(1));
    cluster
        .call_method(NodeId(0), item, "outbid", vec![Value::Int(30)])
        .unwrap();
    assert_eq!(
        cluster
            .call_static(NodeId(2), "AuditLog", "count", vec![])
            .unwrap(),
        Value::Int(2)
    );
}

#[test]
fn hot_catalogue_migrates_to_the_bidding_node() {
    // Items start on node 1; a bidder on node 0 hammers them; adaptation
    // brings the catalogue to the bidder.
    let policy = StaticPolicy::new().place("Item", Placement::Node(NodeId(1)));
    let cluster = build()
        .transform(&["RMI"])
        .unwrap()
        .deploy(2, 3, Box::new(policy));
    let item = cluster
        .new_instance(
            NodeId(0),
            "Item",
            0,
            vec![Value::str("vase"), Value::Int(1)],
        )
        .unwrap();
    assert_eq!(cluster.location_of(NodeId(0), &item), Some(NodeId(1)));
    for i in 0..20 {
        cluster
            .call_method(NodeId(0), item.clone(), "outbid", vec![Value::Int(2 + i)])
            .unwrap();
    }
    let events = cluster.adapt(&AffinityConfig::default());
    // The item migrates; the AuditLog singleton (whose static state was
    // equally chatty from node 0) may legitimately migrate too.
    assert!(
        events
            .iter()
            .any(|e| e.class == "Item" && e.to == NodeId(0)),
        "{events:?}"
    );
    assert_eq!(cluster.location_of(NodeId(0), &item), Some(NodeId(0)));
    // Price state survived the migration.
    assert_eq!(
        cluster
            .call_method(NodeId(0), item, "get_price", vec![])
            .unwrap(),
        Value::Int(21)
    );
}

#[test]
fn describe_concatenates_strings_across_the_wire() {
    let policy = StaticPolicy::new().place("Item", Placement::Node(NodeId(1)));
    let cluster = build()
        .transform(&["RMI"])
        .unwrap()
        .deploy(2, 3, Box::new(policy));
    let item = cluster
        .new_instance(NodeId(0), "Item", 0, vec![Value::str("rug"), Value::Int(7)])
        .unwrap();
    let d = cluster
        .call_method(NodeId(0), item, "describe", vec![])
        .unwrap();
    assert_eq!(d, Value::str("rug@7"));
}
