//! Policy capture end-to-end: the paper's long-term goal is "a complete
//! system for deciding and capturing distribution policy" (Section 4). The
//! text format of `StaticPolicy` is that capture mechanism — this test
//! drives a whole deployment from a policy document alone.

use rafda::classmodel::sample;
use rafda::{Application, NodeId, StaticPolicy, Value};

const POLICY: &str = "
# Deployment: compute tier on node 1, data tier on node 2.
default protocol RMI
default statics node1
default place creator

class Y place node2
class Y protocol SOAP
class Z place node1
class X statics node1
";

#[test]
fn deployment_follows_the_policy_document() {
    let mut app = Application::new();
    sample::build_figure2(app.universe_mut());
    let policy = StaticPolicy::parse(POLICY).expect("policy parses");
    let cluster = app
        .transform(&["RMI", "SOAP"])
        .unwrap()
        .deploy(3, 11, Box::new(policy));

    // Instances of Y land on node 2 (and speak SOAP), Z on node 1.
    let y = cluster
        .new_instance(NodeId(0), "Y", 0, vec![Value::Int(3)])
        .unwrap();
    assert_eq!(cluster.location_of(NodeId(0), &y), Some(NodeId(2)));
    let yh = y.as_ref_handle().unwrap();
    let y_class = cluster.vm(NodeId(0)).class_of(yh).unwrap();
    assert_eq!(
        cluster.universe().class(y_class).name,
        "Y_O_Proxy_SOAP",
        "protocol selection follows the document"
    );

    let z = cluster
        .new_instance(NodeId(0), "Z", 0, vec![Value::Int(5)])
        .unwrap();
    assert_eq!(cluster.location_of(NodeId(0), &z), Some(NodeId(1)));

    // Statics of X resolve on node 1; behaviour unchanged.
    assert_eq!(
        cluster
            .call_static(NodeId(0), "X", "p", vec![Value::Int(6)])
            .unwrap(),
        Value::Int(42)
    );
    assert!(cluster.network().stats().messages > 0);
}

#[test]
fn round_tripped_policy_behaves_identically() {
    let policy = StaticPolicy::parse(POLICY).unwrap();
    let reparsed = StaticPolicy::parse(&policy.to_text()).unwrap();

    let deploy = |p: StaticPolicy| {
        let mut app = Application::new();
        sample::build_figure2(app.universe_mut());
        let cluster = app
            .transform(&["RMI", "SOAP"])
            .unwrap()
            .deploy(3, 11, Box::new(p));
        let y = cluster
            .new_instance(NodeId(0), "Y", 0, vec![Value::Int(3)])
            .unwrap();
        (
            cluster.location_of(NodeId(0), &y),
            cluster
                .call_static(NodeId(0), "X", "p", vec![Value::Int(6)])
                .unwrap(),
        )
    };
    assert_eq!(deploy(policy), deploy(reparsed));
}

#[test]
fn policy_errors_are_reported_with_line_numbers() {
    let err = StaticPolicy::parse("default protocol RMI\nclass X teleport node9\n").unwrap_err();
    assert_eq!(err.line, 2);
}
