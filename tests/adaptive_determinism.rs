//! `Cluster::adapt` must be deterministic per seed even when the affinity
//! tables are tie-heavy: several migration candidates at once, and call
//! counts where two remote callers tie for dominance. Candidate discovery
//! iterates hash maps, so without an explicit order the migration sequence
//! (and with it clocks, traces and stats) differed run to run.

use rafda::classmodel::sample;
use rafda::{
    AffinityConfig, Application, Cluster, MigrationEvent, NodeId, Placement, StaticPolicy, Value,
};

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);

/// Figure 2 spread over three nodes with property caching enabled, driven
/// into a tie-heavy affinity state:
///
/// * several `Y` instances live on node 1, each called equally often by
///   node 0 (directly) and node 2 (via its `X` holder) — a dominant-caller
///   tie on every one of them;
/// * the `X` instances on node 2 are called only from node 0 — several
///   unambiguous candidates whose relative migration order is also
///   order-sensitive.
fn tie_heavy_scenario(seed: u64) -> (Cluster, Vec<MigrationEvent>) {
    let mut app = Application::new();
    sample::build_figure2(app.universe_mut());
    let policy = StaticPolicy::new()
        .place("Y", Placement::Node(N1))
        .place("X", Placement::Node(N2))
        .default_statics(N0)
        .cache("Y", true)
        .cache("X", true);
    let cluster = app
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, seed, Box::new(policy));

    for base in 0..3 {
        let y = cluster
            .new_instance(N0, "Y", 0, vec![Value::Int(base)])
            .unwrap();
        let x = cluster.new_instance(N0, "X", 0, vec![y.clone()]).unwrap();
        cluster.pin(N0, &y);
        cluster.pin(N0, &x);
        // Node 0's tally on Y's export: 1 init$0 from creation, 4 direct
        // `n` calls, and 1 remote `get_base` (the cache-filling miss; the
        // two hits after it never reach the server). Node 2 makes 6 via
        // `x.m` — both callers sit at exactly 6.
        for i in 0..4 {
            cluster
                .call_method(N0, y.clone(), "n", vec![Value::Long(i)])
                .unwrap();
        }
        for i in 0..6 {
            cluster
                .call_method(N0, x.clone(), "m", vec![Value::Long(i)])
                .unwrap();
        }
        // Cached property reads participate in the run (and must not
        // perturb determinism or the affinity tables).
        for _ in 0..3 {
            cluster
                .call_method(N0, y.clone(), "get_base", vec![])
                .unwrap();
        }
    }

    let events = cluster.adapt(&AffinityConfig {
        min_calls: 7,
        min_fraction: 0.5,
    });
    (cluster, events)
}

#[test]
fn same_seed_runs_are_byte_identical_with_caching_enabled() {
    let (a, events_a) = tie_heavy_scenario(42);
    let (b, events_b) = tie_heavy_scenario(42);
    assert_eq!(events_a, events_b, "migration sequences diverged");
    assert_eq!(
        format!("{}", a.stats()),
        format!("{}", b.stats()),
        "stats diverged"
    );
    assert_eq!(a.span_log(), b.span_log(), "span logs diverged");
    assert_eq!(
        a.span_log().chrome_trace_json(),
        b.span_log().chrome_trace_json(),
        "chrome export diverged"
    );
    assert_eq!(
        a.telemetry_report(10),
        b.telemetry_report(10),
        "report diverged"
    );
    assert_eq!(a.network().now(), b.network().now(), "clocks diverged");
}

#[test]
fn dominance_ties_break_toward_the_highest_caller_id() {
    let (_, events) = tie_heavy_scenario(7);
    let y_moves: Vec<&MigrationEvent> = events.iter().filter(|e| e.class == "Y").collect();
    assert!(!y_moves.is_empty(), "tied Y candidates must still migrate");
    for e in &y_moves {
        assert_eq!(e.from, N1);
        assert_eq!(
            e.to, N2,
            "a 6-vs-6 caller tie must resolve to the higher node id"
        );
    }
}

#[test]
fn candidates_migrate_in_export_id_order() {
    let (_, events) = tie_heavy_scenario(11);
    // Within each owner node, migrations must be emitted in ascending
    // export-id order — the stable discovery order.
    for owner in [N1, N2] {
        let oids: Vec<u64> = events
            .iter()
            .filter(|e| e.from == owner)
            .map(|e| e.target.oid)
            .collect();
        assert!(
            events.iter().any(|e| e.from == owner),
            "no events from {owner:?}"
        );
        let mut sorted = oids.clone();
        sorted.sort_unstable();
        assert_eq!(oids, sorted, "migration order not stable for {owner:?}");
    }
}
