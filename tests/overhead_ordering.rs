//! Experiments **E4/E8** (correctness side): the overhead *ordering* the
//! paper asserts must hold on interpreter work counters —
//!
//! `original < RAFDA-transformed (local) < wrapper-per-object`
//!
//! on call-heavy workloads ("Although much simpler in terms of
//! implementation, this [wrapper approach] introduces significantly greater
//! overhead", Section 3). The benchmark harness measures the magnitudes;
//! this test pins the ordering.

use rafda::baseline::WrapperTransformer;
use rafda::corpus::{generate_app, AppSpec, ObserverHooks};
use rafda::{Application, Value, Vm};

fn spec(seed: u64) -> AppSpec {
    AppSpec {
        inheritance: false,
        arrays: false,
        classes: 10,
        int_fields: 2,
        statics: false, // the wrapper approach has no statics story
        seed,
    }
}

fn build(seed: u64) -> Application {
    let mut app = Application::new();
    let obs = app.observer();
    generate_app(
        app.universe_mut(),
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
        &spec(seed),
    );
    app
}

struct Cost {
    steps: u64,
    calls: u64,
    allocs: u64,
}

fn original_cost(seed: u64) -> (rafda::Trace, Cost) {
    let app = build(seed);
    let vm = Vm::new(std::sync::Arc::new(app.universe().clone()));
    vm.bind_observer(&app.observer());
    let trace = vm.run_observed("Driver", "main", vec![Value::Int(9)]);
    let s = vm.stats();
    (
        trace,
        Cost {
            steps: s.steps,
            calls: s.calls,
            allocs: s.heap.objects_allocated,
        },
    )
}

fn rafda_cost(seed: u64) -> (rafda::Trace, Cost) {
    let rt = build(seed).transform(&["RMI"]).unwrap().deploy_local();
    let trace = rt.run_observed("Driver", "main", vec![Value::Int(9)]);
    let s = rt.vm().stats();
    (
        trace,
        Cost {
            steps: s.steps,
            calls: s.calls,
            allocs: s.heap.objects_allocated,
        },
    )
}

fn wrapper_cost(seed: u64) -> (rafda::Trace, Cost) {
    let mut app = build(seed);
    let obs = app.observer();
    WrapperTransformer::new().run(app.universe_mut()).unwrap();
    let vm = Vm::new(std::sync::Arc::new(app.universe().clone()));
    vm.bind_observer(&obs);
    let trace = vm.run_observed("Driver", "main", vec![Value::Int(9)]);
    let s = vm.stats();
    (
        trace,
        Cost {
            steps: s.steps,
            calls: s.calls,
            allocs: s.heap.objects_allocated,
        },
    )
}

#[test]
fn all_three_agree_on_behaviour() {
    for seed in [2, 11, 29] {
        let (a, _) = original_cost(seed);
        let (b, _) = rafda_cost(seed);
        let (c, _) = wrapper_cost(seed);
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(a, c, "seed {seed}");
    }
}

#[test]
fn overhead_ordering_original_rafda_wrapper() {
    for seed in [2, 11, 29] {
        let (_, orig) = original_cost(seed);
        let (_, rafda) = rafda_cost(seed);
        let (_, wrapper) = wrapper_cost(seed);
        assert!(
            orig.steps < rafda.steps,
            "seed {seed}: transformation adds indirection ({} vs {})",
            orig.steps,
            rafda.steps
        );
        assert!(
            rafda.steps < wrapper.steps,
            "seed {seed}: wrapper must cost more than RAFDA ({} vs {})",
            rafda.steps,
            wrapper.steps
        );
        assert!(orig.calls < rafda.calls && rafda.calls < wrapper.calls);
        // The wrapper approach allocates one extra object per instance;
        // RAFDA allocates only the per-class singletons beyond the
        // instances themselves (here: Driver's static-member singleton).
        assert!(
            rafda.allocs <= orig.allocs + 2,
            "rafda {} vs orig {}",
            rafda.allocs,
            orig.allocs
        );
        assert!(
            wrapper.allocs >= orig.allocs * 2 - 2,
            "wrapper {} vs orig {}",
            wrapper.allocs,
            orig.allocs
        );
        assert!(wrapper.allocs > rafda.allocs);
    }
}

#[test]
fn rafda_overhead_is_moderate() {
    // The point of preferring transformation over wrappers: its local
    // overhead stays within a small factor of the original.
    let (_, orig) = original_cost(5);
    let (_, rafda) = rafda_cost(5);
    let factor = rafda.steps as f64 / orig.steps as f64;
    assert!(
        factor < 3.0,
        "RAFDA local overhead should be bounded, got {factor:.2}x"
    );
}
