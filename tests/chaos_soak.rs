//! Chaos soak test: a random interleaving of calls, migrations, pulls and
//! adaptation passes over a pool of counter objects, checked against an
//! exact oracle. Whatever the boundary history, every call must return
//! exactly what a single-address-space run would have — the paper's
//! interchangeability claim under adversarial schedules.
//!
//! All four properties generate their schedules from the shared op
//! vocabulary in [`rafda::corpus::ops`] — the same [`SoakOp`] enum the
//! production-day soak gate (E16, `tests/soak.rs`) churns with, here at
//! per-feature mixes with proptest shrinking.

use proptest::prelude::*;
use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::corpus::ops::{OpMix, SoakOp};
use rafda::{AffinityConfig, Application, LocalPolicy, NodeId, Placement, StaticPolicy, Ty, Value};

const POOL: usize = 4;
const NODES: u32 = 3;

fn counter_class(app: &mut Application, name: &str) {
    let u = app.universe_mut();
    let c = u.declare(name, ClassKind::Class);
    let mut cb = ClassBuilder::new(u, c);
    let v = cb.field(Field::new("v", Ty::Int));
    let mut mb = MethodBuilder::new(1);
    mb.ret();
    cb.ctor(u, vec![], Some(mb.finish()));
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(c, v);
    mb.load_local(1).add();
    mb.put_field(c, v);
    mb.load_this().get_field(c, v).ret_value();
    cb.method(u, "add", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(u);
}

fn counter_app() -> Application {
    let mut app = Application::new();
    counter_class(&mut app, "Counter");
    app
}

/// A counter with both a value-returning `add` (a synchronization point)
/// and a void `inc` (deferrable under `batch on`).
fn batched_counter_app() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let c = u.declare("BCounter", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, c);
    let v = cb.field(Field::new("v", Ty::Int));
    let mut mb = MethodBuilder::new(1);
    mb.ret();
    cb.ctor(u, vec![], Some(mb.finish()));
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(c, v);
    mb.load_local(1).add();
    mb.put_field(c, v);
    mb.load_this().get_field(c, v).ret_value();
    cb.method(u, "add", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(c, v);
    mb.load_local(1).add();
    mb.put_field(c, v);
    mb.ret();
    cb.method(u, "inc", vec![Ty::Int], Ty::Void, Some(mb.finish()));
    cb.finish(u);
    app
}

// --- crash-stop chaos (see the last property below) ---

const FO_NODES: u32 = 4;
const FO_POOL: usize = 6;
/// The coordinator drives every call and is never crashed; it is also never
/// a replica target (backups prefer low node ids), so every failover really
/// crosses the wire.
const FO_COORD: NodeId = NodeId(3);

/// Three structurally identical counter classes, so each can get its own
/// placement (`C0` on node 0, `C1` on node 1, `C2` on node 2).
fn replicated_counter_app() -> Application {
    let mut app = Application::new();
    for i in 0..3 {
        counter_class(&mut app, &format!("C{i}"));
    }
    app
}

/// Proptest case count, overridable so CI can run a quick smoke pass
/// (`CHAOS_CASES=2`) with the invariant monitors enabled.
fn cases() -> u32 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn boundary_chaos_never_changes_observable_values(
        ops in prop::collection::vec(OpMix::boundary(POOL, NODES as u8).strategy(), 1..60),
        seed in 0u64..1000,
    ) {
        let cluster = counter_app()
            .transform(&["RMI"])
            .unwrap()
            .deploy(NODES, seed, Box::new(LocalPolicy::default()));
        cluster.enable_monitors();
        // Counters created round-robin so they start on different nodes'
        // heaps (but all local to node 0's view via proxies).
        let counters: Vec<Value> = (0..POOL)
            .map(|i| {
                cluster
                    .new_instance(NodeId((i % NODES as usize) as u32), "Counter", 0, vec![])
                    .unwrap()
            })
            .collect();
        // Each node needs its own reference; get one by calling through
        // node 0 first when needed. For simplicity all calls go through the
        // creating node's reference:
        let home: Vec<NodeId> = (0..POOL).map(|i| NodeId((i % NODES as usize) as u32)).collect();
        let mut oracle = [0i32; POOL];

        for op in &ops {
            match *op {
                SoakOp::Call { idx, delta } => {
                    oracle[idx] += i32::from(delta);
                    let r = cluster
                        .call_method(
                            home[idx],
                            counters[idx].clone(),
                            "add",
                            vec![Value::Int(i32::from(delta))],
                        )
                        .unwrap();
                    prop_assert_eq!(r, Value::Int(oracle[idx]), "{:?}", op);
                }
                SoakOp::Migrate { idx, node } => {
                    let h = counters[idx].as_ref_handle().unwrap();
                    // Find where it currently lives as seen from its home.
                    let loc = cluster.location_of(home[idx], &counters[idx]).unwrap();
                    if loc != NodeId(u32::from(node)) {
                        // Migration must start at the current home; the
                        // handle we hold is on `home[idx]` — if the object
                        // is local there, migrate; otherwise pull first.
                        if loc == home[idx] {
                            cluster.migrate(home[idx], h, NodeId(u32::from(node))).unwrap();
                        } else {
                            // The object is remote from home's perspective:
                            // use pull_local to bring it here instead.
                            cluster.pull_local(home[idx], h).unwrap();
                        }
                    }
                }
                SoakOp::Pull { idx } => {
                    let h = counters[idx].as_ref_handle().unwrap();
                    let loc = cluster.location_of(home[idx], &counters[idx]).unwrap();
                    if loc != home[idx] {
                        cluster.pull_local(home[idx], h).unwrap();
                    }
                }
                SoakOp::Adapt => {
                    cluster.adapt(&AffinityConfig {
                        min_calls: 4,
                        min_fraction: 0.5,
                    });
                }
                ref other => unreachable!("the boundary mix never generates {other}"),
            }
        }
        // Final sweep: every counter still reachable with the right value.
        for idx in 0..POOL {
            let r = cluster
                .call_method(home[idx], counters[idx].clone(), "add", vec![Value::Int(0)])
                .unwrap();
            prop_assert_eq!(r, Value::Int(oracle[idx]), "final counter {}", idx);
        }
        prop_assert_eq!(cluster.check_invariants(), vec![]);
    }

    /// Fault-tolerant chaos: the same op schedule run fault-free and under
    /// a 10% message drop rate must produce byte-identical observable
    /// results — the retry/at-most-once machinery absorbs every loss
    /// without ever double-applying a mutation.
    #[test]
    fn drop_chaos_matches_fault_free_run_exactly(
        ops in prop::collection::vec(OpMix::boundary(POOL, NODES as u8).strategy(), 1..40),
        seed in 0u64..500,
    ) {
        let run = |drop: f64| -> (Vec<i32>, rafda::RuntimeStats) {
            let cluster = counter_app()
                .transform(&["RMI"])
                .unwrap()
                .deploy(NODES, seed, Box::new(rafda::LocalPolicy::default()));
            // A larger budget than the default keeps the chance of an
            // exhausted retry astronomically small even across many cases.
            cluster.set_retry_policy(rafda::RetryPolicy {
                max_attempts: 10,
                ..rafda::RetryPolicy::default()
            });
            cluster.network().fault_plan(|f| f.drop_probability = drop);
            cluster.enable_monitors();
            let counters: Vec<Value> = (0..POOL)
                .map(|i| {
                    cluster
                        .new_instance(NodeId((i % NODES as usize) as u32), "Counter", 0, vec![])
                        .unwrap()
                })
                .collect();
            let home: Vec<NodeId> =
                (0..POOL).map(|i| NodeId((i % NODES as usize) as u32)).collect();
            let mut results = Vec::new();
            for op in &ops {
                match *op {
                    SoakOp::Call { idx, delta } => {
                        let r = cluster
                            .call_method(
                                home[idx],
                                counters[idx].clone(),
                                "add",
                                vec![Value::Int(i32::from(delta))],
                            )
                            .unwrap();
                        match r {
                            Value::Int(v) => results.push(v),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    SoakOp::Migrate { idx, node } => {
                        let h = counters[idx].as_ref_handle().unwrap();
                        let loc = cluster.location_of(home[idx], &counters[idx]).unwrap();
                        if loc != NodeId(u32::from(node)) {
                            if loc == home[idx] {
                                cluster.migrate(home[idx], h, NodeId(u32::from(node))).unwrap();
                            } else {
                                cluster.pull_local(home[idx], h).unwrap();
                            }
                        }
                    }
                    SoakOp::Pull { idx } => {
                        let h = counters[idx].as_ref_handle().unwrap();
                        let loc = cluster.location_of(home[idx], &counters[idx]).unwrap();
                        if loc != home[idx] {
                            cluster.pull_local(home[idx], h).unwrap();
                        }
                    }
                    SoakOp::Adapt => {
                        cluster.adapt(&AffinityConfig {
                            min_calls: 4,
                            min_fraction: 0.5,
                        });
                    }
                    ref other => unreachable!("this mix never generates {other}"),
                }
            }
            for idx in 0..POOL {
                let r = cluster
                    .call_method(home[idx], counters[idx].clone(), "add", vec![Value::Int(0)])
                    .unwrap();
                match r {
                    Value::Int(v) => results.push(v),
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(cluster.check_invariants(), vec![], "monitor violation");
            (results, cluster.stats())
        };
        let (clean, clean_stats) = run(0.0);
        let (chaotic, chaos_stats) = run(0.10);
        prop_assert_eq!(&clean, &chaotic, "drops changed an observable value");
        prop_assert_eq!(clean_stats.retries, 0);
        prop_assert_eq!(clean_stats.dedup_hits, 0);
        prop_assert_eq!(chaos_stats.net_failures, 0, "an exchange exhausted its budget");
    }

    /// Crash-stop chaos on top of message drops: counters replicated with
    /// k = 2 over four nodes, a coordinator (node 3) that never crashes and
    /// a random crash/restart schedule over nodes 0–2 with at most one node
    /// down at a time. Every call must still return exactly the oracle
    /// value — no lost object, no lost update, no double apply — and the
    /// same seed must reproduce the run byte-for-byte, failover counters
    /// included.
    #[test]
    fn crash_stop_chaos_loses_nothing_and_stays_deterministic(
        ops in prop::collection::vec(OpMix::crash_stop(FO_POOL, 3).strategy(), 1..50),
        seed in 0u64..500,
    ) {
        let run = || -> (Vec<i32>, rafda::RuntimeStats, u64) {
            let mut policy = StaticPolicy::new().default_statics(FO_COORD);
            for i in 0..3u32 {
                policy = policy
                    .place(&format!("C{i}"), Placement::Node(NodeId(i)))
                    .replicate(&format!("C{i}"), 2);
            }
            let cluster = replicated_counter_app()
                .transform(&["RMI"])
                .unwrap()
                .deploy(FO_NODES, seed, Box::new(policy));
            cluster.set_retry_policy(rafda::RetryPolicy {
                max_attempts: 10,
                ..rafda::RetryPolicy::default()
            });
            cluster.network().fault_plan(|f| f.drop_probability = 0.10);
            cluster.enable_monitors();
            let counters: Vec<Value> = (0..FO_POOL)
                .map(|i| {
                    cluster
                        .new_instance(FO_COORD, &format!("C{}", i % 3), 0, vec![])
                        .unwrap()
                })
                .collect();
            let mut down: Option<u32> = None;
            let mut results = Vec::new();
            // A restarted node starts with an empty replica store and only
            // re-enters the sync set at the next served mutation. Touch every
            // counter after a restart so each owner re-ships its state before
            // any further crash — otherwise two bounce cycles with no calls
            // in between really do lose the last copy.
            let touch_all = |counters: &[Value]| {
                for c in counters {
                    cluster
                        .call_method(FO_COORD, c.clone(), "add", vec![Value::Int(0)])
                        .unwrap();
                }
            };
            for op in &ops {
                match *op {
                    SoakOp::Call { idx, delta } => {
                        let r = cluster
                            .call_method(
                                FO_COORD,
                                counters[idx].clone(),
                                "add",
                                vec![Value::Int(i32::from(delta))],
                            )
                            .unwrap();
                        match r {
                            Value::Int(v) => results.push(v),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    SoakOp::Crash { node } => {
                        // Keep at most one node down: with k = 2 and both
                        // backups live at every owner crash, some replica is
                        // always current (restarted nodes start empty but
                        // re-enter the sync set on the next mutation).
                        if let Some(d) = down.take() {
                            cluster.restart(NodeId(d));
                            touch_all(&counters);
                        }
                        cluster.crash(NodeId(u32::from(node)));
                        down = Some(u32::from(node));
                    }
                    SoakOp::Heal => {
                        if let Some(d) = down.take() {
                            cluster.restart(NodeId(d));
                            touch_all(&counters);
                        }
                    }
                    ref other => unreachable!("the crash-stop mix never generates {other}"),
                }
            }
            // Zero lost objects: every counter must still answer, even the
            // ones whose owner is down right now.
            for c in &counters {
                let r = cluster
                    .call_method(FO_COORD, c.clone(), "add", vec![Value::Int(0)])
                    .unwrap();
                match r {
                    Value::Int(v) => results.push(v),
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(cluster.check_invariants(), vec![], "monitor violation");
            (results, cluster.stats(), cluster.network().now().as_ns())
        };

        // Exact oracle, computed without any cluster.
        let mut oracle = [0i32; FO_POOL];
        let mut expected = Vec::new();
        for op in &ops {
            if let SoakOp::Call { idx, delta } = *op {
                oracle[idx] += i32::from(delta);
                expected.push(oracle[idx]);
            }
        }
        expected.extend(oracle);

        let (a, a_stats, a_now) = run();
        let (b, b_stats, b_now) = run();
        prop_assert_eq!(&a, &expected, "a crash or drop changed an observable value");
        prop_assert_eq!(&a, &b, "same seed, same schedule, different values");
        prop_assert_eq!(a_stats, b_stats, "failover counters must be deterministic");
        prop_assert_eq!(a_now, b_now, "simulated clock diverged");
    }

    /// Batched-invocation chaos (experiment **E12**'s safety half): the same
    /// schedule of void increments, value-returning adds and boundary moves
    /// must return oracle-exact values whether batching is off, on, or on
    /// *while* 10% of frames are dropped — retransmitted batch frames must
    /// dedup as a unit, never double-applying a deferred op.
    #[test]
    fn batched_boundary_chaos_matches_oracle(
        ops in prop::collection::vec(OpMix::batched(POOL, NODES as u8).strategy(), 1..50),
        seed in 0u64..500,
    ) {
        let run = |batch: bool, drop: f64| -> (Vec<i32>, rafda::RuntimeStats) {
            let policy = StaticPolicy::new()
                .default_statics(NodeId(0))
                .default_batch(batch);
            let cluster = batched_counter_app()
                .transform(&["RMI"])
                .unwrap()
                .deploy(NODES, seed, Box::new(policy));
            cluster.set_retry_policy(rafda::RetryPolicy {
                max_attempts: 10,
                ..rafda::RetryPolicy::default()
            });
            cluster.network().fault_plan(|f| f.drop_probability = drop);
            cluster.enable_monitors();
            let counters: Vec<Value> = (0..POOL)
                .map(|i| {
                    cluster
                        .new_instance(NodeId((i % NODES as usize) as u32), "BCounter", 0, vec![])
                        .unwrap()
                })
                .collect();
            let home: Vec<NodeId> =
                (0..POOL).map(|i| NodeId((i % NODES as usize) as u32)).collect();
            let mut results = Vec::new();
            for op in &ops {
                match *op {
                    SoakOp::Inc { idx, delta } => {
                        // Fire-and-forget: returns Null immediately when
                        // deferred, so nothing is recorded here — the next
                        // Add observes the accumulated effect.
                        cluster
                            .call_method(
                                home[idx],
                                counters[idx].clone(),
                                "inc",
                                vec![Value::Int(i32::from(delta))],
                            )
                            .unwrap();
                    }
                    SoakOp::Call { idx, delta } => {
                        let r = cluster
                            .call_method(
                                home[idx],
                                counters[idx].clone(),
                                "add",
                                vec![Value::Int(i32::from(delta))],
                            )
                            .unwrap();
                        match r {
                            Value::Int(v) => results.push(v),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    SoakOp::Migrate { idx, node } => {
                        let h = counters[idx].as_ref_handle().unwrap();
                        let loc = cluster.location_of(home[idx], &counters[idx]).unwrap();
                        if loc != NodeId(u32::from(node)) {
                            if loc == home[idx] {
                                cluster.migrate(home[idx], h, NodeId(u32::from(node))).unwrap();
                            } else {
                                cluster.pull_local(home[idx], h).unwrap();
                            }
                        }
                    }
                    SoakOp::Pull { idx } => {
                        let h = counters[idx].as_ref_handle().unwrap();
                        let loc = cluster.location_of(home[idx], &counters[idx]).unwrap();
                        if loc != home[idx] {
                            cluster.pull_local(home[idx], h).unwrap();
                        }
                    }
                    SoakOp::Adapt => {
                        cluster.adapt(&AffinityConfig {
                            min_calls: 4,
                            min_fraction: 0.5,
                        });
                    }
                    ref other => unreachable!("this mix never generates {other}"),
                }
            }
            // Final sweep flushes every queue and checks every counter.
            for idx in 0..POOL {
                let r = cluster
                    .call_method(home[idx], counters[idx].clone(), "add", vec![Value::Int(0)])
                    .unwrap();
                match r {
                    Value::Int(v) => results.push(v),
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(cluster.check_invariants(), vec![], "monitor violation");
            (results, cluster.stats())
        };

        // Exact oracle: program order, batching invisible.
        let mut oracle = [0i32; POOL];
        let mut expected = Vec::new();
        for op in &ops {
            match *op {
                SoakOp::Inc { idx, delta } => oracle[idx] += i32::from(delta),
                SoakOp::Call { idx, delta } => {
                    oracle[idx] += i32::from(delta);
                    expected.push(oracle[idx]);
                }
                _ => {}
            }
        }
        expected.extend(oracle);

        let (off, off_stats) = run(false, 0.0);
        let (on, _) = run(true, 0.0);
        let (on_chaotic, chaos_stats) = run(true, 0.10);
        prop_assert_eq!(&off, &expected, "unbatched run diverged from the oracle");
        prop_assert_eq!(&on, &expected, "batching changed an observable value");
        prop_assert_eq!(&on_chaotic, &expected, "drops + batching changed a value");
        // With batching off, the machinery must be provably inert.
        prop_assert_eq!(off_stats.batched_ops, 0);
        prop_assert_eq!(off_stats.flushes, 0);
        prop_assert_eq!(chaos_stats.net_failures, 0, "an exchange exhausted its budget");
    }
}
