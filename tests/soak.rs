//! The production-day soak gate (experiment **E16**).
//!
//! One seeded churn schedule drives every distribution feature at once —
//! sharding with replica reads, property caching, invocation batching,
//! k = 2 replication with crash-stop failover, migrations, adaptation and
//! rebalance ticks, all under a 5 % message-drop rate — checked op-by-op
//! against the exact single-address-space oracle with every invariant
//! monitor armed.
//!
//! Knobs (see `ci.sh`):
//!
//! * `SOAK_OPS=<n>` — exact op count (highest precedence);
//! * `SOAK_SMOKE=1` — force the 10⁴-op smoke depth explicitly;
//! * `SOAK_SEEDS=1,2,3` — run the gate once per seed (default `42`).
//!
//! Plain `cargo test` runs at the smoke depth so the debug tier stays
//! fast; the full production day is `SOAK_OPS=100000 cargo test --release
//! --test soak` (or `cargo bench --bench e16_soak`, which defaults to
//! 10⁵ ops under the same knobs).
//!
//! On failure the gate does not just panic: it hands the flattened op
//! list to the delta-debugging shrinker (`proptest::shrink`) and prints a
//! minimal failing trace together with the seed and an exact replay
//! command line.

use proptest::shrink::minimise;
use rafda::corpus::ops::{generate_churn, ChurnConfig, SoakOp};
use rafda::soak::{run_flat, run_schedule};

/// Gate depth: `SOAK_OPS` wins; otherwise the 10⁴ smoke depth (which
/// `SOAK_SMOKE=1` also selects explicitly, for parity with the bench).
fn depth() -> usize {
    if let Ok(v) = std::env::var("SOAK_OPS") {
        return v.parse().expect("SOAK_OPS must be an op count");
    }
    10_000
}

/// Seeds to sweep: `SOAK_SEEDS` as a comma list, default `42`.
fn seeds() -> Vec<u64> {
    match std::env::var("SOAK_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("SOAK_SEEDS must be seeds"))
            .collect(),
        Err(_) => vec![42],
    }
}

/// Render a shrunk trace, one op per line.
fn render_trace(ops: &[SoakOp]) -> String {
    ops.iter()
        .enumerate()
        .map(|(i, op)| format!("  {i:>3}: {op}\n"))
        .collect()
}

/// The gate: the full churn schedule must match the oracle op-for-op and
/// leave every monitor silent. On divergence, shrink and report.
#[test]
fn production_day_soak_matches_the_oracle() {
    for seed in seeds() {
        let cfg = ChurnConfig::production_day(seed, depth());
        let schedule = generate_churn(&cfg);
        match run_schedule(&cfg, &schedule) {
            Ok(report) => {
                println!("{report}");
                assert_eq!(report.total_ops() as usize, schedule.total_ops());
                assert!(report.clean(), "{report}");
            }
            Err(msg) => {
                let ops = schedule.flatten();
                let min = minimise(&ops, 600, |sub| run_flat(&cfg, sub, false).is_err());
                panic!(
                    "soak seed {seed} diverged: {msg}\n\
                     minimal failing trace ({} of {} ops, {} probe runs):\n{}\
                     replay: SOAK_SEEDS={seed} SOAK_OPS={} cargo test --test soak",
                    min.ops.len(),
                    ops.len(),
                    min.runs,
                    render_trace(&min.ops),
                    depth(),
                );
            }
        }
    }
}

/// Same seed, same schedule, byte-identical report — the soak's whole
/// account of the run (op counts, message totals, simulated time, monitor
/// verdicts) is deterministic.
#[test]
fn the_soak_report_is_deterministic() {
    let render = || {
        let cfg = ChurnConfig::production_day(7, 1_500);
        let schedule = generate_churn(&cfg);
        run_schedule(&cfg, &schedule)
            .expect("the small soak is clean")
            .to_string()
    };
    let a = render();
    assert_eq!(a, render(), "same seed must render an identical report");
    assert!(a.contains("seed 7"), "{a}");
}

/// Failure-path drill: plant the E10 cache-coherence canary (the next
/// migration "forgets" its tombstone) under a realistic op prefix, then
/// shrink. The minimal trace must be tiny (≤ 10 ops) and still fail.
#[test]
fn a_planted_fault_shrinks_to_a_minimal_trace() {
    let cfg = ChurnConfig::production_day(99, 120);
    let schedule = generate_churn(&cfg);
    // Keep only call/read/inc churn so the planted migration's tombstone
    // is the single one the canary can skip, then append the trigger:
    // warm the cache, migrate, read through the forwarding location.
    let mut ops: Vec<SoakOp> = schedule
        .flatten()
        .into_iter()
        .filter(|op| {
            matches!(
                op,
                SoakOp::Call { .. } | SoakOp::Read { .. } | SoakOp::Inc { .. }
            )
        })
        .collect();
    let acct = cfg.items; // first Acct index
    ops.push(SoakOp::Call {
        idx: acct,
        delta: 3,
    });
    ops.push(SoakOp::Read { idx: acct });
    ops.push(SoakOp::Migrate { idx: acct, node: 3 });
    ops.push(SoakOp::Read { idx: acct });

    assert!(
        run_flat(&cfg, &ops, true).is_err(),
        "the planted fault must fail at full length"
    );
    let min = minimise(&ops, 300, |sub| run_flat(&cfg, sub, true).is_err());
    println!(
        "canary shrank {} ops to {} in {} probe runs (seed {}):\n{}",
        ops.len(),
        min.ops.len(),
        min.runs,
        cfg.seed,
        render_trace(&min.ops),
    );
    assert!(min.improved, "shrinking must make progress");
    assert!(
        min.ops.len() <= 10,
        "minimal trace should be tiny, got {} ops:\n{}",
        min.ops.len(),
        render_trace(&min.ops),
    );
    assert!(
        run_flat(&cfg, &min.ops, true).is_err(),
        "the minimal trace must still fail"
    );
}
