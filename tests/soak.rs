//! The production-day soak gate (experiment **E16**).
//!
//! One seeded churn schedule drives every distribution feature at once —
//! sharding with replica reads, property caching, invocation batching,
//! k = 2 replication with crash-stop failover, migrations, adaptation and
//! rebalance ticks, all under a 5 % message-drop rate — checked op-by-op
//! against the exact single-address-space oracle with every invariant
//! monitor armed.
//!
//! Knobs (see `ci.sh`):
//!
//! * `SOAK_OPS=<n>` — exact op count (highest precedence);
//! * `SOAK_SMOKE=1` — force the 10⁴-op smoke depth explicitly;
//! * `SOAK_SEEDS=1,2,3` — run the gate once per seed (default `42`).
//!
//! Plain `cargo test` runs at the smoke depth so the debug tier stays
//! fast; the full production day is `SOAK_OPS=100000 cargo test --release
//! --test soak` (or `cargo bench --bench e16_soak`, which defaults to
//! 10⁵ ops under the same knobs).
//!
//! On failure the gate does not just panic: it hands the flattened op
//! list to the delta-debugging shrinker (`proptest::shrink`) and prints a
//! minimal failing trace together with the seed and an exact replay
//! command line.

use proptest::shrink::minimise;
use rafda::corpus::ops::{generate_churn, ChurnConfig, Oracle, SoakOp};
use rafda::soak::{run_flat, run_schedule, SoakHarness};
use rafda::NodeId;

/// Gate depth: `SOAK_OPS` wins; otherwise the 10⁴ smoke depth (which
/// `SOAK_SMOKE=1` also selects explicitly, for parity with the bench).
fn depth() -> usize {
    if let Ok(v) = std::env::var("SOAK_OPS") {
        return v.parse().expect("SOAK_OPS must be an op count");
    }
    10_000
}

/// Seeds to sweep: `SOAK_SEEDS` as a comma list, default `42`.
fn seeds() -> Vec<u64> {
    match std::env::var("SOAK_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("SOAK_SEEDS must be seeds"))
            .collect(),
        Err(_) => vec![42],
    }
}

/// Render a shrunk trace, one op per line.
fn render_trace(ops: &[SoakOp]) -> String {
    ops.iter()
        .enumerate()
        .map(|(i, op)| format!("  {i:>3}: {op}\n"))
        .collect()
}

/// The gate: the full churn schedule must match the oracle op-for-op and
/// leave every monitor silent. On divergence, shrink and report.
#[test]
fn production_day_soak_matches_the_oracle() {
    for seed in seeds() {
        let cfg = ChurnConfig::production_day(seed, depth());
        let schedule = generate_churn(&cfg);
        match run_schedule(&cfg, &schedule) {
            Ok(report) => {
                println!("{report}");
                assert_eq!(report.total_ops() as usize, schedule.total_ops());
                assert!(report.clean(), "{report}");
            }
            Err(msg) => {
                let ops = schedule.flatten();
                let min = minimise(&ops, 600, |sub| run_flat(&cfg, sub, false).is_err());
                panic!(
                    "soak seed {seed} diverged: {msg}\n\
                     minimal failing trace ({} of {} ops, {} probe runs):\n{}\
                     replay: SOAK_SEEDS={seed} SOAK_OPS={} cargo test --test soak",
                    min.ops.len(),
                    ops.len(),
                    min.runs,
                    render_trace(&min.ops),
                    depth(),
                );
            }
        }
    }
}

/// Same seed, same schedule, byte-identical report — the soak's whole
/// account of the run (op counts, message totals, simulated time, monitor
/// verdicts) is deterministic.
#[test]
fn the_soak_report_is_deterministic() {
    let render = || {
        let cfg = ChurnConfig::production_day(7, 1_500);
        let schedule = generate_churn(&cfg);
        run_schedule(&cfg, &schedule)
            .expect("the small soak is clean")
            .to_string()
    };
    let a = render();
    assert_eq!(a, render(), "same seed must render an identical report");
    assert!(a.contains("seed 7"), "{a}");
}

/// The O(dirty) regression gate: a read-only steady phase must perform
/// **zero** sweep probes. Getters never bump versions and never open app
/// frames, so pure read traffic leaves the dirty set empty and the sweep
/// at each exchange returns before probing anything — the property that
/// makes the sweep cost proportional to activity, not deployment size.
#[test]
fn a_read_only_steady_phase_performs_zero_sweep_probes() {
    let cfg = ChurnConfig::production_day(21, 0);
    let mut harness = SoakHarness::deploy(&cfg);
    let mut oracle = Oracle::new(cfg.pool());
    // Mutate every pool object once so real replicated state exists —
    // zero probes must mean "nothing was dirty", not "nothing was there".
    for idx in 0..cfg.pool() {
        harness
            .apply(&SoakOp::Call { idx, delta: 1 }, &mut oracle)
            .expect("warmup mutation");
    }
    // Quiescent settle: ship every backup and drain the dirty set.
    assert_eq!(harness.cluster().check_invariants(), vec![]);
    let before = harness.cluster().stats();
    for _ in 0..5 {
        for idx in 0..cfg.pool() {
            harness
                .apply(&SoakOp::Read { idx }, &mut oracle)
                .expect("read-only phase");
        }
    }
    let after = harness.cluster().stats();
    assert_eq!(
        after.replica_sweep_probes, before.replica_sweep_probes,
        "read-only traffic must not probe a single replica"
    );
    assert_eq!(
        after.dirty_marks, before.dirty_marks,
        "getters must never mark a location dirty"
    );
}

/// Dirty-marking completeness for the subtlest path: a pulled object's
/// later mutations are plain VM calls on the coordinator — no serve, no
/// exchange, no version bump at a server — exactly the shape of the PR 7
/// lost-update bug. The entry-point app frame must mark the node, and the
/// next remote exchange's sweep must probe and re-ship the drifted state.
#[test]
fn a_local_call_after_pull_marks_dirty_and_reships() {
    let cfg = ChurnConfig::production_day(29, 0);
    let mut harness = SoakHarness::deploy(&cfg);
    let mut oracle = Oracle::new(cfg.pool());
    let acct = cfg.items; // first Acct: cached, k = 2, home node 1
    harness
        .apply(
            &SoakOp::Call {
                idx: acct,
                delta: 5,
            },
            &mut oracle,
        )
        .expect("warm the value");
    harness
        .apply(&SoakOp::Pull { idx: acct }, &mut oracle)
        .expect("pull the acct local to the coordinator");
    assert_eq!(harness.cluster().check_invariants(), vec![]);
    let before = harness.cluster().stats();
    harness
        .apply(
            &SoakOp::Call {
                idx: acct,
                delta: 3,
            },
            &mut oracle,
        )
        .expect("local mutation on the pulled object");
    let marked = harness.cluster().stats();
    assert!(
        marked.dirty_marks > before.dirty_marks,
        "the bare local mutation must mark its node dirty"
    );
    // A cold read of a *different* acct is guaranteed to go remote, and
    // that exchange's sweep must probe the marked location and ship it.
    harness
        .apply(&SoakOp::Read { idx: acct + 1 }, &mut oracle)
        .expect("unrelated remote traffic");
    let swept = harness.cluster().stats();
    assert!(
        swept.replica_sweep_probes > marked.replica_sweep_probes,
        "the next exchange must probe the marked location"
    );
    assert!(
        swept.replica_syncs > marked.replica_syncs,
        "the drifted state must re-ship to the backups"
    );
    harness.finale(&oracle).expect("oracle-exact finale");
}

/// Replay of the PR 7 self-promotion scenario at soak level: crash the
/// `Acct` home so the next call failover-promotes a backup, keep mutating
/// the promoted copy, then crash the *new* home. If post-promotion
/// mutations ever stopped reaching the backups, the second failover would
/// resurrect stale state and the oracle check would catch it. (The exact
/// in-VM self-promotion replay lives in the runtime's
/// `local_mutations_after_self_promotion_reach_the_backups` regression
/// test; this trace drives the same hazard through the public soak path.)
#[test]
fn pr7_trace_promoted_state_survives_a_second_crash() {
    let cfg = ChurnConfig::production_day(27, 0);
    let acct = cfg.items;
    let ops = vec![
        SoakOp::Call {
            idx: acct,
            delta: -4,
        },
        SoakOp::Crash { node: 1 }, // the Acct home dies
        SoakOp::Call {
            idx: acct,
            delta: -9,
        }, // failover-promote, then mutate
        SoakOp::Call {
            idx: acct,
            delta: -3,
        },
        SoakOp::Crash { node: 0 }, // heal node 1, then kill the promoted home
        SoakOp::Read { idx: acct },
    ];
    run_flat(&cfg, &ops, false).expect("post-promotion mutations must reach the backups");
}

/// Replay of the PR 9 two-op shrunk trace: a void `inc` on a batched
/// `Tally` is deferred while its destination is already crashed; the
/// flush (at the heal's restart synchronization point) must re-home the
/// deferred op through the recorded home instead of silently dropping it.
#[test]
fn pr9_trace_deferred_call_to_crashed_destination_is_not_lost() {
    let cfg = ChurnConfig::production_day(23, 0);
    let tally = cfg.items + cfg.accts; // first Tally: batched, home node 2
    let ops = vec![
        SoakOp::Crash { node: 2 },
        SoakOp::Inc {
            idx: tally,
            delta: 7,
        },
    ];
    run_flat(&cfg, &ops, false).expect("the deferred op must be re-homed, not lost");
}

/// Replay of the PR 9 five-op shrunk trace: mutate, migrate, mutate at
/// the new home, crash the new home, read. Without a cluster-level home
/// record for migrations, failover resurrected the stale pre-migration
/// backup; the recorded home must route the promotion to current state.
#[test]
fn pr9_trace_migration_records_a_home_so_crash_cycling_stays_exact() {
    let cfg = ChurnConfig::production_day(25, 0);
    let acct = cfg.items;
    let ops = vec![
        SoakOp::Call {
            idx: acct,
            delta: 5,
        },
        SoakOp::Migrate { idx: acct, node: 0 },
        SoakOp::Call {
            idx: acct,
            delta: 3,
        },
        SoakOp::Crash { node: 0 },
        SoakOp::Read { idx: acct },
    ];
    run_flat(&cfg, &ops, false).expect("failover must follow the recorded home");
}

/// The satellite export-purge bugfix: a migrated-away entry leaves the
/// source node's live `exports` table (the sweep stops re-probing it
/// forever), the old location still forwards transparently, and pulling
/// the object back through its own forwarding stub re-promotes the entry
/// under its original id — the table returns to its original size.
#[test]
fn a_migrated_export_leaves_the_source_table_and_returns_on_round_trip() {
    let cfg = ChurnConfig::production_day(31, 0);
    let mut harness = SoakHarness::deploy(&cfg);
    let mut oracle = Oracle::new(cfg.pool());
    let acct = cfg.items;
    harness
        .apply(
            &SoakOp::Call {
                idx: acct,
                delta: 2,
            },
            &mut oracle,
        )
        .expect("warm the value");
    let coord = NodeId(u32::from(cfg.nodes) - 1);
    let home = NodeId(1);
    let before = harness.cluster().export_count(home);
    let (owner, stub) = harness
        .cluster()
        .home_of(coord, harness.obj(acct))
        .expect("the acct starts at its placed home");
    assert_eq!(owner, home);
    harness
        .cluster()
        .migrate(owner, stub, NodeId(3))
        .expect("migrate away");
    assert_eq!(
        harness.cluster().export_count(home),
        before - 1,
        "the moved-away entry must leave the live export table"
    );
    // The old location still serves transparently via its forwarding stub.
    harness
        .apply(&SoakOp::Read { idx: acct }, &mut oracle)
        .expect("read through the old location");
    // `migrate` rewrote the source object in place, so `stub` is now node
    // 1's forwarding proxy; pulling through it brings the object home and
    // must re-promote the demoted entry under its original id.
    harness
        .cluster()
        .pull_local(home, stub)
        .expect("pull the object back home");
    assert_eq!(
        harness.cluster().export_count(home),
        before,
        "the round-tripped object re-promotes its original entry"
    );
    harness
        .apply(
            &SoakOp::Call {
                idx: acct,
                delta: 1,
            },
            &mut oracle,
        )
        .expect("mutate after the round trip");
    harness.finale(&oracle).expect("oracle-exact finale");
}

/// Failure-path drill: plant the E10 cache-coherence canary (the next
/// migration "forgets" its tombstone) under a realistic op prefix, then
/// shrink. The minimal trace must be tiny (≤ 10 ops) and still fail.
#[test]
fn a_planted_fault_shrinks_to_a_minimal_trace() {
    let cfg = ChurnConfig::production_day(99, 120);
    let schedule = generate_churn(&cfg);
    // Keep only call/read/inc churn so the planted migration's tombstone
    // is the single one the canary can skip, then append the trigger:
    // warm the cache, migrate, read through the forwarding location.
    let mut ops: Vec<SoakOp> = schedule
        .flatten()
        .into_iter()
        .filter(|op| {
            matches!(
                op,
                SoakOp::Call { .. } | SoakOp::Read { .. } | SoakOp::Inc { .. }
            )
        })
        .collect();
    let acct = cfg.items; // first Acct index
    ops.push(SoakOp::Call {
        idx: acct,
        delta: 3,
    });
    ops.push(SoakOp::Read { idx: acct });
    ops.push(SoakOp::Migrate { idx: acct, node: 3 });
    ops.push(SoakOp::Read { idx: acct });

    assert!(
        run_flat(&cfg, &ops, true).is_err(),
        "the planted fault must fail at full length"
    );
    let min = minimise(&ops, 300, |sub| run_flat(&cfg, sub, true).is_err());
    println!(
        "canary shrank {} ops to {} in {} probe runs (seed {}):\n{}",
        ops.len(),
        min.ops.len(),
        min.runs,
        cfg.seed,
        render_trace(&min.ops),
    );
    assert!(min.improved, "shrinking must make progress");
    assert!(
        min.ops.len() <= 10,
        "minimal trace should be tiny, got {} ops:\n{}",
        min.ops.len(),
        render_trace(&min.ops),
    );
    assert!(
        run_flat(&cfg, &min.ops, true).is_err(),
        "the minimal trace must still fail"
    );
}
